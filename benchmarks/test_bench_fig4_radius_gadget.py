"""E6 -- Figure 4 / Lemma 4.9: the radius gadget separates F' = 1 from F' = 0.

Analogous to the diameter benchmark (E4): the radius of the contracted
gadget must fall below ``max{2α, β}`` exactly when Alice's and Bob's inputs
intersect, and stay at or above ``min{α + β, 3α}`` otherwise, giving the
``3/2 - o(1)`` hardness gap of Theorem 4.8.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import render_table
from repro.graphs import unweighted_diameter
from repro.lower_bounds import GadgetParameters, build_radius_gadget, verify_radius_gap

HEADERS = [
    "instance",
    "n",
    "hop diameter",
    "#pairs checked",
    "yes-instances",
    "no-instances",
    "violations",
    "min gap ratio",
]


def _paper_scaled_parameters(height, num_blocks, ell):
    shape = GadgetParameters(height=height, num_blocks=num_blocks, ell=ell, alpha=10, beta=20)
    n = shape.expected_num_nodes(with_radius_hub=True)
    return GadgetParameters(
        height=height, num_blocks=num_blocks, ell=ell, alpha=n * n, beta=2 * n * n
    )


def _gap_ratio(records):
    yes = [r.measured for r in records if r.function_value == 1]
    no = [r.measured for r in records if r.function_value == 0]
    if not yes or not no:
        return float("nan")
    return min(no) / max(yes)


def _run_case(label, parameters, exhaustive, num_samples, seed):
    records = verify_radius_gap(
        parameters, exhaustive=exhaustive, num_samples=num_samples, seed=seed
    )
    ones = (1,) * parameters.input_length
    gadget = build_radius_gadget(ones, ones, parameters)
    return [
        label,
        gadget.num_nodes,
        int(unweighted_diameter(gadget.graph)),
        len(records),
        sum(1 for r in records if r.function_value == 1),
        sum(1 for r in records if r.function_value == 0),
        sum(1 for r in records if not r.holds),
        f"{_gap_ratio(records):.3f}",
    ]


def _sweep():
    rows = []
    tiny = _paper_scaled_parameters(height=2, num_blocks=2, ell=1)
    rows.append(_run_case("exhaustive 2x1", tiny, exhaustive=True, num_samples=0, seed=0))
    small = _paper_scaled_parameters(height=2, num_blocks=2, ell=2)
    rows.append(_run_case("exhaustive 2x2", small, exhaustive=True, num_samples=0, seed=0))
    large = _paper_scaled_parameters(height=4, num_blocks=8, ell=4)
    rows.append(_run_case("sampled 8x4 (h=4)", large, exhaustive=False, num_samples=12, seed=2))
    return rows


def test_fig4_radius_gadget_gap(benchmark, record_artifact):
    rows = run_once(benchmark, _sweep)
    table = render_table(
        HEADERS, rows, title="Figure 4 / Lemma 4.9: radius gap verification"
    )
    record_artifact("fig4_radius_gadget", table)

    for row in rows:
        assert row[6] == 0
        assert row[4] > 0 and row[5] > 0
        assert float(row[7]) >= 1.45
        # The hub a_0 adds one extra hop on top of the diameter gadget's
        # O(h) bound, so the envelope is 2h + 8 here.
        assert row[2] <= 2 * 4 + 8
