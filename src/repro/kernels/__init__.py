"""Array-based (CSR) shortest-path kernels with pluggable backends.

This subpackage is the performance substrate under every sequential oracle in
the library: a frozen :class:`~repro.kernels.csr.CSRGraph` snapshot of
:class:`~repro.graphs.weighted_graph.WeightedGraph` plus batched kernels that
the :mod:`repro.graphs`, :mod:`repro.core`, :mod:`repro.nanongkai` and
:mod:`repro.analysis` layers all consume.

Backends are pluggable through a small registry (:mod:`repro.kernels.backend`):
the vectorized NumPy backend is registered when NumPy is importable, and a
pure-Python fallback with identical semantics is always available.  Set
``REPRO_BACKEND=python`` (or use :func:`force_backend`) to pin the fallback,
e.g. when bisecting a suspected kernel bug.
"""

from repro.kernels.csr import CSRGraph
from repro.kernels.backend import (
    BACKEND_ENV_VAR,
    KernelBackend,
    available_backends,
    force_backend,
    get_backend,
    register_backend,
)

# Register the built-in backends: the Python fallback always, NumPy and SciPy
# when their imports succeed (the environment may legitimately lack them).
from repro.kernels import python_backend as _python_backend  # noqa: F401

try:  # pragma: no cover - exercised via the backend-matrix CI job
    from repro.kernels import numpy_backend as _numpy_backend  # noqa: F401
except ImportError:  # pragma: no cover
    pass
else:
    try:  # pragma: no cover - SciPy implies NumPy, not vice versa
        from repro.kernels import scipy_backend as _scipy_backend  # noqa: F401
    except ImportError:  # pragma: no cover
        pass

from repro.kernels.api import (
    all_pairs_distances_csr,
    batched_bellman_ford,
    diameter_csr,
    dijkstra_csr,
    eccentricities_csr,
    multi_source_dijkstra,
    radius_csr,
)

__all__ = [
    "CSRGraph",
    "KernelBackend",
    "BACKEND_ENV_VAR",
    "available_backends",
    "force_backend",
    "get_backend",
    "register_backend",
    "dijkstra_csr",
    "multi_source_dijkstra",
    "batched_bellman_ford",
    "all_pairs_distances_csr",
    "eccentricities_csr",
    "diameter_csr",
    "radius_csr",
]
