"""Edge cases and failure-path tests for the Theorem 1.1 algorithm."""

from __future__ import annotations

import dataclasses

import pytest

from repro.congest import Network
from repro.core import (
    AlgorithmParameters,
    ParameterProfile,
    quantum_weighted_diameter,
    quantum_weighted_radius,
)
from repro.graphs import (
    complete_graph,
    diameter,
    path_graph,
    radius,
    star_graph,
)


class TestTinyNetworks:
    def test_two_node_network(self):
        network = Network(path_graph(2, max_weight=7, seed=1))
        result = quantum_weighted_diameter(network, seed=0)
        assert result.within_guarantee
        assert result.exact_value == diameter(network.graph)

    def test_three_node_star(self):
        network = Network(star_graph(2, max_weight=9, seed=2))
        diameter_result = quantum_weighted_diameter(network, seed=0)
        radius_result = quantum_weighted_radius(network, seed=0)
        assert diameter_result.within_guarantee
        assert radius_result.within_guarantee

    def test_complete_graph_diameter_is_heaviest_needed_edge(self):
        network = Network(complete_graph(6, max_weight=30, seed=3))
        result = quantum_weighted_diameter(network, seed=1)
        assert result.within_guarantee
        assert result.exact_value == diameter(network.graph)


class TestHighDiameterTopologies:
    """On a path, D = Θ(n): the min{.., n} branch of Theorem 1.1 applies."""

    def test_weighted_path_diameter(self):
        network = Network(path_graph(14, max_weight=25, seed=4))
        result = quantum_weighted_diameter(network, seed=2)
        assert result.within_guarantee
        assert result.exact_value == diameter(network.graph)

    def test_weighted_path_radius(self):
        network = Network(path_graph(14, max_weight=25, seed=4))
        result = quantum_weighted_radius(network, seed=2)
        assert result.within_guarantee
        assert result.exact_value == radius(network.graph)

    def test_unit_weight_path(self):
        # Weighted and unweighted coincide; the approximation must still hold.
        network = Network(path_graph(12))
        result = quantum_weighted_diameter(network, seed=0)
        assert result.within_guarantee
        assert result.exact_value == 11


class TestGoodScaleFailurePath:
    def test_tiny_skeleton_probability_triggers_patch(self):
        """With an absurdly small r most skeleton sets miss the extremal node;
        the algorithm's re-sample patch (Good-Scale failure handling) must
        keep the guarantee intact."""
        network = Network(star_graph(8, max_weight=11, seed=5))
        parameters = AlgorithmParameters.for_network(
            network, profile=ParameterProfile.FAST, num_sets=2
        )
        parameters = dataclasses.replace(parameters, skeleton_size=0.05)
        result = quantum_weighted_diameter(network, seed=3, parameters=parameters)
        assert result.within_guarantee

    def test_single_set_search_space(self):
        network = Network(path_graph(8, max_weight=6, seed=6))
        parameters = AlgorithmParameters.for_network(
            network, profile=ParameterProfile.FAST, num_sets=1
        )
        result = quantum_weighted_diameter(network, seed=1, parameters=parameters)
        assert result.chosen_set_index == 0
        assert result.within_guarantee


class TestDeltaSensitivity:
    def test_smaller_delta_charges_more_rounds(self):
        network = Network(star_graph(10, max_weight=8, seed=7))
        strict = quantum_weighted_diameter(network, seed=4, delta=0.01)
        loose = quantum_weighted_diameter(network, seed=4, delta=0.4)
        assert strict.outer_charge.invocations >= loose.outer_charge.invocations
        assert strict.total_rounds >= loose.total_rounds

    def test_invalid_delta_rejected(self):
        network = Network(star_graph(5, max_weight=3, seed=8))
        with pytest.raises(ValueError):
            quantum_weighted_diameter(network, seed=0, delta=0.0)


class TestResultInvariants:
    def test_report_protocol_label(self):
        network = Network(star_graph(7, max_weight=5, seed=9))
        diameter_result = quantum_weighted_diameter(network, seed=0)
        radius_result = quantum_weighted_radius(network, seed=0)
        assert diameter_result.report.protocol == "quantum-weighted-diameter"
        assert radius_result.report.protocol == "quantum-weighted-radius"

    def test_chosen_skeleton_is_subset_of_nodes(self):
        network = Network(path_graph(10, max_weight=4, seed=10))
        result = quantum_weighted_diameter(network, seed=5)
        assert set(result.chosen_skeleton) <= set(network.nodes)

    def test_value_at_least_exact_lower_bound(self):
        """Both estimates are one-sided: never below the true value."""
        network = Network(path_graph(9, max_weight=13, seed=11))
        diameter_result = quantum_weighted_diameter(network, seed=6)
        radius_result = quantum_weighted_radius(network, seed=6)
        assert diameter_result.value >= diameter_result.exact_value - 1e-9
        assert radius_result.value >= radius_result.exact_value - 1e-9
