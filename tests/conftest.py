"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.congest import Network
from repro.graphs import (
    WeightedGraph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_weighted_graph,
    star_graph,
)


@pytest.fixture
def triangle_graph() -> WeightedGraph:
    """A weighted triangle: 0-1 (3), 1-2 (4), 0-2 (10)."""
    graph = WeightedGraph()
    graph.add_edge(0, 1, 3)
    graph.add_edge(1, 2, 4)
    graph.add_edge(0, 2, 10)
    return graph


@pytest.fixture
def small_path() -> WeightedGraph:
    """A weighted 5-node path with weights 2, 3, 1, 5."""
    graph = WeightedGraph()
    weights = [2, 3, 1, 5]
    for i, w in enumerate(weights):
        graph.add_edge(i, i + 1, w)
    return graph


@pytest.fixture
def small_grid() -> WeightedGraph:
    """A 3x3 unit-weight grid."""
    return grid_graph(3, 3)


@pytest.fixture
def weighted_random_graph() -> WeightedGraph:
    """A 24-node connected random graph with weights in [1, 20]."""
    return random_weighted_graph(num_nodes=24, average_degree=3.5, max_weight=20, seed=7)


@pytest.fixture
def random_network(weighted_random_graph) -> Network:
    """The random graph wrapped as a CONGEST network."""
    return Network(weighted_random_graph)


@pytest.fixture
def path_network() -> Network:
    """A weighted 8-node path network."""
    return Network(path_graph(8, max_weight=9, seed=3))


@pytest.fixture
def cycle_network() -> Network:
    """A weighted 9-node cycle network."""
    return Network(cycle_graph(9, max_weight=5, seed=4))


@pytest.fixture
def star_network() -> Network:
    """A star network with 6 leaves."""
    return Network(star_graph(6, max_weight=7, seed=5))
