"""Engine registry behaviour plus observer/quiescence semantics per engine.

Covers the engine-selection contract (explicit > forced > ``REPRO_ENGINE`` >
auto, with sparse fallback for ineligible runs) and the two cross-engine
semantic guarantees the satellite protocols rely on: observers see rounds
numbered from 1 with exactly the delivered messages, and quiescence halting
charges the same final round on every engine.
"""

from __future__ import annotations

import pytest

from repro.congest import (
    Network,
    NodeAlgorithm,
    Simulator,
    available_engines,
    force_engine,
    get_engine,
)
from repro.congest.engine import base as engine_base
from repro.congest.engine.base import resolve_engine
from repro.congest.primitives import _MinIdFloodAlgorithm
from repro.congest.sssp import _BellmanFordAlgorithm
from repro.graphs import WeightedGraph, path_graph, random_weighted_graph

ENGINES = available_engines()

pytestmark = pytest.mark.engines


@pytest.fixture
def network():
    return Network(random_weighted_graph(12, average_degree=3.0, max_weight=20, seed=9))


class _Quiet(NodeAlgorithm):
    name = "quiet"

    def receive(self, ctx, round_number, messages):
        ctx.halt()


class TestRegistry:
    def test_bundled_engines_registered(self):
        assert "sparse" in ENGINES
        assert "legacy" in ENGINES
        assert "sharded" in ENGINES  # registered with or without NumPy

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown execution engine"):
            get_engine("warp-drive")
        with pytest.raises(ValueError, match="unknown execution engine"):
            with force_engine("warp-drive"):
                pass  # pragma: no cover

    def test_unknown_env_engine_rejected(self, network, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
        with pytest.raises(ValueError, match="unknown execution engine"):
            resolve_engine(None, network, _Quiet())

    def test_force_engine_nesting_restores_prior_engine(self, network, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        algorithm = _Quiet()
        with force_engine("legacy"):
            with force_engine("sharded"):
                assert resolve_engine(None, network, algorithm).name == "sharded"
            # Leaving the inner block restores the *outer* pin, not "auto".
            assert resolve_engine(None, network, algorithm).name == "legacy"
        assert resolve_engine(None, network, algorithm).name == "sparse"

    def test_force_engine_restores_even_after_errors(self, network, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        with force_engine("legacy"):
            with pytest.raises(RuntimeError):
                with force_engine("sharded"):
                    raise RuntimeError("mid-block failure")
            assert resolve_engine(None, network, _Quiet()).name == "legacy"
        assert resolve_engine(None, network, _Quiet()).name == "sparse"

    def test_auto_never_selects_sharded(self, network, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        # Sharding is opt-in (env/force/explicit): auto resolution picks the
        # fastest eligible engine, never the shard-partitioned executor.
        assert resolve_engine(None, network, _Quiet()).name == "sparse"
        monkeypatch.setenv("REPRO_ENGINE", "sharded")
        assert resolve_engine(None, network, _Quiet()).name == "sharded"

    def test_force_engine_pins_and_restores(self, network, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        algorithm = _Quiet()
        with force_engine("legacy"):
            assert resolve_engine(None, network, algorithm).name == "legacy"
        # Override gone: auto resolution picks sparse for schema-less programs.
        assert resolve_engine(None, network, algorithm).name == "sparse"

    def test_env_variable_selects_engine(self, network, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "legacy")
        assert resolve_engine(None, network, _Quiet()).name == "legacy"

    def test_env_variable_falls_back_when_ineligible(self, network, monkeypatch):
        if "dense" not in ENGINES:
            pytest.skip("dense engine needs NumPy")
        monkeypatch.setenv("REPRO_ENGINE", "dense")
        # No message schema: the env preference cannot apply and sparse runs.
        assert resolve_engine(None, network, _Quiet()).name == "sparse"

    def test_env_dense_falls_back_when_unregistered(self, network, monkeypatch):
        """REPRO_ENGINE=dense must not crash runs on a NumPy-free machine
        (where the dense engine never registers): known-but-absent optional
        engines fall back to sparse; typos still raise."""
        monkeypatch.setenv("REPRO_ENGINE", "dense")
        removed = engine_base._REGISTRY.pop("dense", None)
        try:
            algorithm = _BellmanFordAlgorithm([min(network.nodes)])
            assert resolve_engine(None, network, algorithm).name == "sparse"
            monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
            with pytest.raises(ValueError, match="unknown execution engine"):
                resolve_engine(None, network, algorithm)
        finally:
            if removed is not None:
                engine_base._REGISTRY["dense"] = removed

    def test_auto_prefers_dense_for_schema_protocols(self, network, monkeypatch):
        if "dense" not in ENGINES:
            pytest.skip("dense engine needs NumPy")
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        algorithm = _BellmanFordAlgorithm([min(network.nodes)])
        assert resolve_engine(None, network, algorithm).name == "dense"
        # ... but not when pre-loaded memory makes the run ineligible.
        assert (
            resolve_engine(
                None, network, algorithm, initial_memory={0: {"x": 1}}
            ).name
            == "sparse"
        )

    def test_custom_engine_registration(self, network):
        class EchoEngine(engine_base.ExecutionEngine):
            name = "echo-test"

            def run(self, network, algorithm, max_rounds, **kwargs):
                return get_engine("sparse").run(
                    network, algorithm, max_rounds, **kwargs
                )

        engine_base.register_engine(EchoEngine())
        try:
            result = Simulator(network).run(_Quiet(), engine="echo-test")
            assert result.report.rounds == 1
        finally:
            engine_base._REGISTRY.pop("echo-test", None)


class TestObserverSemantics:
    """Observers see rounds numbered from 1 with exactly the delivered messages."""

    @staticmethod
    def _record(network, algorithm, engine, **kwargs):
        rounds = []

        def observer(round_number, delivered):
            rounds.append(
                (
                    round_number,
                    sorted(
                        (m.sender, m.receiver, m.payload, m.tag) for m in delivered
                    ),
                )
            )

        # force_engine, not engine=: engines that cannot run the algorithm
        # (e.g. symbolic on an ungated flood) must fall back to sparse and
        # still produce the identical observer stream.
        with force_engine(engine):
            result = Simulator(network).run(algorithm, observer=observer, **kwargs)
        return rounds, result

    @pytest.mark.parametrize("engine", ENGINES)
    def test_round_numbering_and_delivery(self, network, engine):
        source = min(network.nodes)
        rounds, result = self._record(
            network,
            _BellmanFordAlgorithm([source]),
            engine,
            halt_on_quiescence=True,
        )
        numbers = [number for number, _ in rounds]
        assert numbers == list(range(1, result.report.rounds + 1))
        # Round 1 delivers exactly the source's initial announcements.
        assert rounds[0][1] == sorted(
            (source, neighbor, ("d", source, 0), "bf")
            for neighbor in network.neighbors(source)
        )
        delivered_total = sum(len(batch) for _, batch in rounds)
        assert delivered_total == result.report.total_messages

    def test_observed_messages_identical_across_engines(self, network):
        streams = {}
        for engine in ENGINES:
            streams[engine] = self._record(
                network,
                _BellmanFordAlgorithm(sorted(network.nodes)[:4]),
                engine,
                halt_on_quiescence=True,
            )[0]
        reference = streams.pop(ENGINES[0])
        for engine, stream in streams.items():
            assert stream == reference, f"{engine} observer stream diverged"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_idle_rounds_observed_with_empty_delivery(self, engine):
        # Budget far beyond convergence: the trailing rounds are idle but
        # still numbered and observed, with nothing delivered.
        network = Network(path_graph(4))
        budget = 9
        rounds, result = self._record(
            network, _MinIdFloodAlgorithm(budget), engine
        )
        assert result.report.rounds == budget
        numbers = [number for number, _ in rounds]
        assert numbers == list(range(1, budget + 1))
        assert all(batch == [] for _, batch in rounds[4:])


class _ListPayload(NodeAlgorithm):
    """Sends an unhashable (list) payload: exercises the sparse engine's
    fallback from the shared payload-size cache to the per-message walk."""

    name = "list-payload"

    def initialize(self, ctx):
        if ctx.node == 0:
            ctx.send(1, [1, 2, 3], tag="raw")

    def receive(self, ctx, round_number, messages):
        ctx.halt()


def test_sparse_sizes_unhashable_payloads_like_legacy():
    network = Network(WeightedGraph(edges=[(0, 1, 1)]))
    sparse = Simulator(network).run(_ListPayload(), engine="sparse")
    legacy = Simulator(network).run(_ListPayload(), engine="legacy")
    assert sparse.report == legacy.report
    assert sparse.report.total_bits > 0


class _MixedTypePayloads(NodeAlgorithm):
    """Equal-comparing payloads of different types: 2 == 2.0 == two*True.

    encode_value charges them differently (int 2 -> 3 bits, float -> one
    word, bool -> 1 bit), so a size cache keyed on payload *equality* alone
    would collapse them onto whichever was sized first."""

    name = "mixed-type-payloads"

    def initialize(self, ctx):
        other = 1 - ctx.node
        ctx.send(other, 2 if ctx.node == 0 else 2.0)
        ctx.send(other, (True,) if ctx.node == 0 else (1,))

    def receive(self, ctx, round_number, messages):
        ctx.halt()


def test_sparse_never_conflates_equal_payloads_of_different_types():
    network = Network(WeightedGraph(edges=[(0, 1, 1)]))
    sparse = Simulator(network).run(_MixedTypePayloads(), engine="sparse")
    legacy = Simulator(network).run(_MixedTypePayloads(), engine="legacy")
    assert sparse.report == legacy.report


def test_schema_overhead_respects_word_bits():
    """Custom schemas may use word-sized (float) key labels; the analytic
    overhead must charge them with the network's word size, exactly as
    message_size_bits would, or dense accounting desyncs."""
    from repro.congest import MinPlusSchema
    from repro.congest.message import encode_value, message_size_bits

    schema = MinPlusSchema(
        label="d",
        tag="t",
        keys=(2.5,),
        initial=lambda node: [0],
        finalize=lambda node, row: {},
    )
    for word_bits in (8, 32, 64):
        expected = message_size_bits(
            ("d", 2.5, 0), tag="t", word_bits=word_bits
        ) - encode_value(0, word_bits)
        assert schema.payload_overhead_bits(0, word_bits) == expected


@pytest.mark.skipif("dense" not in ENGINES, reason="dense engine needs NumPy")
def test_dense_bit_lengths_exact_at_power_boundaries():
    """The vectorized bit_length must match int.bit_length exactly -- float
    log2 is only an estimate near powers of two, where the accounting would
    otherwise drift off the other engines by a bit."""
    np = pytest.importorskip("numpy")
    from repro.congest.engine.dense import _bit_lengths

    values = [0, 1, 2, 3]
    for k in range(1, 60):
        values.extend([2**k - 1, 2**k, 2**k + 1])
    arr = np.array(values, dtype=np.int64)
    assert _bit_lengths(arr).tolist() == [v.bit_length() for v in values]


class TestQuiescenceSemantics:
    """halt_on_quiescence charges the same final round on every engine."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_quiescent_round_still_charged(self, engine):
        network = Network(path_graph(5))
        source = 0
        with force_engine(engine):
            result = Simulator(network).run(
                _BellmanFordAlgorithm([source]),
                halt_on_quiescence=True,
            )
        # The flood takes 4 rounds to cross the path; the quiescence halt is
        # detected in (and charges) the round after the last improvement.
        assert result.report.rounds == 5
        assert result.report.congested_rounds >= result.report.rounds
        assert all(ctx.halted for ctx in result.contexts.values())

    def test_reports_identical_across_engines(self):
        network = Network(
            random_weighted_graph(16, average_degree=3.0, max_weight=30, seed=11)
        )
        reports = {}
        for engine in ENGINES:
            with force_engine(engine):
                reports[engine] = Simulator(network).run(
                    _BellmanFordAlgorithm(sorted(network.nodes)),
                    halt_on_quiescence=True,
                ).report
        reference = reports.pop(ENGINES[0])
        for engine, report in reports.items():
            assert report == reference, f"{engine} diverged: {report} != {reference}"


# --------------------------------------------------------------------------- #
# Announce-schedule schema validation: the dense engine must refuse (fall
# back) or fail loudly on every pre-loaded-memory / schema shape it cannot
# express, and the schema payload helpers must mirror the node programs.
# --------------------------------------------------------------------------- #
@pytest.mark.skipif("dense" not in ENGINES, reason="dense engine needs NumPy")
class TestWeightOverrideValidation:
    def _algorithm(self, source=0, bound=10, weight_key="override_weights"):
        from repro.nanongkai.bounded_distance_sssp import BoundedDistanceSsspAlgorithm

        return BoundedDistanceSsspAlgorithm(source, bound, weight_key=weight_key)

    def _memory(self, network):
        return {
            node: {"override_weights": dict(network.incident_weights(node))}
            for node in network.nodes
        }

    def test_well_formed_overrides_are_eligible(self, network):
        dense = get_engine("dense")
        assert dense.supports(network, self._algorithm(), self._memory(network))

    def test_schema_key_without_memory_falls_back(self, network):
        # The node program would KeyError on its first weight lookup; the
        # dense engine must not silently run the network weights instead.
        dense = get_engine("dense")
        assert not dense.supports(network, self._algorithm())

    def test_extra_memory_keys_fall_back(self, network):
        memory = self._memory(network)
        memory[min(network.nodes)]["extra_state"] = 1
        assert not get_engine("dense").supports(network, self._algorithm(), memory)
        with pytest.raises(ValueError, match="dense|memory"):
            Simulator(network).run(
                self._algorithm(), initial_memory=memory, engine="dense"
            )

    def test_non_integer_weights_fall_back(self, network):
        memory = self._memory(network)
        node = min(network.nodes)
        neighbor = network.neighbors(node)[0]
        memory[node]["override_weights"][neighbor] = 2.5
        assert not get_engine("dense").supports(network, self._algorithm(), memory)

    def test_non_positive_weights_fall_back(self, network):
        memory = self._memory(network)
        node = min(network.nodes)
        neighbor = network.neighbors(node)[0]
        memory[node]["override_weights"][neighbor] = 0
        assert not get_engine("dense").supports(network, self._algorithm(), memory)

    def test_unknown_nodes_in_memory_fall_back(self, network):
        memory = self._memory(network)
        memory[987654] = {"override_weights": {}}
        assert not get_engine("dense").supports(network, self._algorithm(), memory)

    def test_memory_without_schema_key_falls_back(self, network):
        memory = self._memory(network)
        assert not get_engine("dense").supports(
            network, self._algorithm(weight_key=None), memory
        )

    def test_huge_override_weights_fall_back(self, network):
        memory = self._memory(network)
        node = min(network.nodes)
        neighbor = network.neighbors(node)[0]
        memory[node]["override_weights"][neighbor] = 2**53
        assert not get_engine("dense").supports(network, self._algorithm(), memory)


@pytest.mark.skipif("dense" not in ENGINES, reason="dense engine needs NumPy")
class TestAnnounceScheduleSchemas:
    def test_column_window_count_must_match_columns(self, network):
        from repro.congest.engine.schema import MinPlusSchema

        class _BadWindows(NodeAlgorithm):
            name = "bad-windows"

            def message_schema(self):
                return MinPlusSchema(
                    label="x",
                    tag="",
                    keys=("a", "b"),
                    initial=lambda node: [0, 0],
                    finalize=lambda node, row: {},
                    announce_at=lambda value, offset: value <= offset,
                    round_budget=3,
                    column_windows=((1, 2),),  # two columns, one window
                )

            def receive(self, ctx, round_number, messages):
                ctx.halt()

        with pytest.raises(ValueError, match="column windows"):
            Simulator(network).run(_BadWindows(), engine="dense")

    def test_huge_column_weights_fall_back(self, network):
        from repro.congest.engine.schema import MinPlusSchema

        class _HugeTransform(NodeAlgorithm):
            name = "huge-transform"

            def message_schema(self):
                return MinPlusSchema(
                    label="x",
                    tag="",
                    keys=(0,),
                    initial=lambda node: [0 if node == 0 else float("inf")],
                    finalize=lambda node, row: {},
                    value_cap=10,
                    round_budget=3,
                    column_weight=lambda column, weight: weight * 2**53,
                )

            def receive(self, ctx, round_number, messages):
                ctx.halt()

        assert not get_engine("dense").supports(network, _HugeTransform())

    def test_schedule_that_never_fires_hits_the_round_limit_on_every_engine(self):
        """A finite pending entry keeps the dense loop stepping (the gate
        could fire later); if it never does, the failure mode must match the
        engines that run the node program."""
        from repro.congest.engine.schema import MinPlusSchema
        from repro.congest.simulator import RoundLimitExceeded

        class _NeverAnnounce(NodeAlgorithm):
            name = "never-announce"

            def message_schema(self):
                return MinPlusSchema(
                    label="x",
                    tag="",
                    keys=None,
                    initial=lambda node: [node],
                    send_initial="none",
                    add_edge_weight=False,
                    announce_at=lambda value, offset: (value < 0) & (offset < 0),
                    announce_once=True,
                    finalize=lambda node, row: {"value": int(row[0])},
                )

            def initialize(self, ctx):
                ctx.memory["value"] = ctx.node

            def receive(self, ctx, round_number, messages):
                pass  # never announces, never halts

        network = Network(path_graph(4, max_weight=3, seed=0))
        messages = {}
        for engine in ENGINES:
            with pytest.raises(RoundLimitExceeded) as excinfo:
                Simulator(network, max_rounds=9).run(_NeverAnnounce(), engine=engine)
            messages[engine] = str(excinfo.value)
        assert len(set(messages.values())) == 1, messages

    def test_flattened_keys_splat_into_payloads(self):
        from repro.congest.engine.schema import MinPlusSchema

        schema = MinPlusSchema(
            label="ms",
            tag="mssp",
            keys=((0, 1), (2, 3)),
            flatten_keys=True,
            initial=lambda node: [0, 0],
            finalize=lambda node, row: {},
        )
        assert schema.payload_for(0, 5.0) == ("ms", 0, 1, 5)
        assert schema.payload_for(1, float("inf"))[:3] == ("ms", 2, 3)
        nested = MinPlusSchema(
            label="ms",
            tag="",
            keys=((0, 1),),
            initial=lambda node: [0],
            finalize=lambda node, row: {},
        )
        assert nested.payload_for(0, 5.0) == ("ms", (0, 1), 5)
