"""Tests for Algorithm 1 (Bounded-Hop SSSP via weight rounding)."""

from __future__ import annotations

import math

import pytest

from repro.congest import Network
from repro.graphs import bounded_hop_distances, dijkstra, random_weighted_graph
from repro.graphs.rounding import approx_bounded_hop_distances_from
from repro.nanongkai import bounded_hop_sssp_protocol
from repro.nanongkai.bounded_hop_sssp import level_distance_bound, rounded_incident_weights

INF = math.inf


class TestLevelHelpers:
    def test_level_distance_bound(self):
        assert level_distance_bound(10, 0.5) == 50
        assert level_distance_bound(4, 1.0) == 12

    def test_level_distance_bound_validation(self):
        with pytest.raises(ValueError):
            level_distance_bound(0, 0.5)
        with pytest.raises(ValueError):
            level_distance_bound(5, 0)

    def test_rounded_incident_weights_match_definition(self, random_network):
        hop_bound, epsilon, level = 6, 0.5, 2
        table = rounded_incident_weights(random_network, hop_bound, epsilon, level)
        for node in random_network.nodes:
            for neighbor, weight in random_network.incident_weights(node).items():
                expected = max(
                    1, math.ceil(2 * hop_bound * weight / (epsilon * 2**level))
                )
                assert table[node][neighbor] == expected


class TestProtocol:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0])
    def test_matches_sequential_reference(self, random_network, epsilon):
        hop_bound = 6
        distances, _ = bounded_hop_sssp_protocol(random_network, 0, hop_bound, epsilon)
        reference = approx_bounded_hop_distances_from(
            random_network.graph, 0, hop_bound, epsilon
        )
        for node in random_network.nodes:
            if math.isinf(reference[node]):
                assert distances[node] == INF
            else:
                assert abs(distances[node] - reference[node]) < 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lemma_3_2_sandwich(self, seed):
        graph = random_weighted_graph(num_nodes=18, max_weight=15, seed=seed)
        network = Network(graph)
        hop_bound, epsilon = 5, 0.5
        distances, _ = bounded_hop_sssp_protocol(network, 0, hop_bound, epsilon)
        exact = dijkstra(graph, 0)
        hop_limited = bounded_hop_distances(graph, 0, hop_bound)
        for node in graph.nodes:
            if math.isinf(hop_limited[node]):
                continue
            assert distances[node] >= exact[node] - 1e-9
            assert distances[node] <= (1 + epsilon) * hop_limited[node] + 1e-9

    def test_source_distance_zero(self, random_network):
        distances, _ = bounded_hop_sssp_protocol(random_network, 5, 4, 0.5)
        assert distances[5] == 0

    def test_explicit_level_count(self, random_network):
        distances, report = bounded_hop_sssp_protocol(
            random_network, 0, 4, 0.5, levels=3
        )
        assert report.rounds > 0
        exact = dijkstra(random_network.graph, 0)
        assert all(distances[v] >= exact[v] - 1e-9 for v in random_network.nodes)


class TestRoundCost:
    def test_rounds_scale_with_hop_bound_over_epsilon(self, random_network):
        _, loose = bounded_hop_sssp_protocol(random_network, 0, 3, 1.0, levels=4)
        _, tight = bounded_hop_sssp_protocol(random_network, 0, 12, 0.25, levels=4)
        # (1 + 2/eps) * l grows from 9 to 108: the measured rounds must follow.
        assert tight.rounds > 5 * loose.rounds

    def test_rounds_scale_linearly_in_levels(self, random_network):
        _, few = bounded_hop_sssp_protocol(random_network, 0, 4, 0.5, levels=2)
        _, many = bounded_hop_sssp_protocol(random_network, 0, 4, 0.5, levels=8)
        assert 3 * few.rounds <= many.rounds <= 5 * few.rounds
