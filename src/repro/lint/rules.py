"""The repo-invariant rules: REP101 -- REP106.

Each rule machine-checks one contract the architecture notes promise and
the test suite previously enforced only dynamically (or not at all):

========  =============================  ==========================================
Code      Name                           Contract
========  =============================  ==========================================
REP101    float-identity-comparison      ``x is math.inf`` is only true for the
                                         interned singleton; NumPy-derived
                                         infinities fail it (PR 3 bug class).
REP102    unguarded-numpy-import         The no-NumPy tier: only the explicit
                                         backend modules may import numpy/scipy
                                         unconditionally at module top level.
REP103    env-config-read                ``REPRO_*`` knobs are read by the three
                                         registries and ``repro.runtime`` only;
                                         everything else goes through
                                         ``repro.configure``.
REP104    mutator-version-bump           ``WeightedGraph`` methods that mutate the
                                         adjacency must bump ``_version`` (CSR /
                                         digest cache invalidation).
REP105    unregistered-subclass          An engine/backend subclass that is never
                                         passed to its ``register_*`` function is
                                         dead code the registries cannot route to.
REP106    global-random-call             Library code draws from explicit seeded
                                         ``random.Random`` instances (or the
                                         ``QuantumRng`` shim), never the shared
                                         module-global stream.
========  =============================  ==========================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

__all__ = [
    "FloatIdentityComparison",
    "UnguardedNumpyImport",
    "EnvConfigRead",
    "MutatorVersionBump",
    "UnregisteredSubclass",
    "GlobalRandomCall",
]


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``os.environ.get`` -> ``("os", "environ", "get")``; None if not a pure chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


# ---------------------------------------------------------------------- #
@register_rule
class FloatIdentityComparison(Rule):
    """REP101: ``is`` / ``is not`` against a float is an identity trap."""

    code = "REP101"
    name = "float-identity-comparison"
    summary = (
        "`is`/`is not` comparison against a float (math.inf, math.nan, a float "
        "literal/constant or float(...)): use ==, math.isinf or math.isnan"
    )
    scope = "all"
    node_types = (ast.Compare,)

    def visit(self, node: ast.Compare) -> Iterator[Finding]:
        sides = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Is, ast.IsNot)):
                continue
            for side in (sides[index], sides[index + 1]):
                described = self._describe_float(side)
                if described is not None:
                    verb = "is not" if isinstance(op, ast.IsNot) else "is"
                    yield self.finding(
                        node,
                        f"identity comparison `{verb} {described}`: only the "
                        "interned singleton passes (NumPy-derived floats do "
                        "not); use ==, math.isinf or math.isnan",
                    )
                    break

    def _describe_float(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return repr(node.value)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "math"
            and node.attr in ("inf", "nan")
        ):
            return f"math.{node.attr}"
        if isinstance(node, ast.Name):
            value = self.ctx.constants.get(node.id)
            if type(value) is float:
                return node.id
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            return "float(...)"
        return None


# ---------------------------------------------------------------------- #
@register_rule
class UnguardedNumpyImport(Rule):
    """REP102: the no-NumPy tier survives only if numpy imports are contained."""

    code = "REP102"
    name = "unguarded-numpy-import"
    summary = (
        "top-level `import numpy`/`import scipy` outside the backend-module "
        "allowlist and outside a try/except ImportError guard breaks the "
        "dependency-free tier"
    )
    scope = "src"
    node_types = (ast.Import, ast.ImportFrom)

    #: Modules whose entire point is the NumPy/SciPy tier; they are only ever
    #: imported behind registry guards, so their own imports may be bare.
    ALLOWED_MODULES = {
        "repro.kernels.numpy_backend",
        "repro.kernels.scipy_backend",
        "repro.quantum.numpy_backend",
        "repro.congest.engine.dense",
    }
    BLOCKED_ROOTS = {"numpy", "scipy"}

    def visit(self, node: ast.AST) -> Iterator[Finding]:
        if self.ctx.in_function or self.ctx.import_guarded:
            return
        if self.ctx.module in self.ALLOWED_MODULES:
            return
        if isinstance(node, ast.Import):
            roots = {alias.name.split(".")[0] for alias in node.names}
        elif node.module is not None and node.level == 0:
            roots = {node.module.split(".")[0]}
        else:
            return
        for root in sorted(roots & self.BLOCKED_ROOTS):
            yield self.finding(
                node,
                f"unguarded top-level import of {root!r}: the module becomes "
                "unimportable on the no-NumPy tier; import lazily inside the "
                "function that needs it, or guard with try/except ImportError",
            )


# ---------------------------------------------------------------------- #
@register_rule
class EnvConfigRead(Rule):
    """REP103: configuration flows through ``repro.configure``, not ad-hoc reads."""

    code = "REP103"
    name = "env-config-read"
    summary = (
        "`REPRO_*` environment read outside repro.runtime and the three "
        "registry modules: accept the knob as an argument or go through "
        "repro.configure"
    )
    scope = "src"
    node_types = (ast.Call, ast.Subscript)

    ALLOWED_MODULES = {
        "repro.runtime",
        "repro.congest.engine.base",
        "repro.kernels.backend",
        "repro.quantum.backend",
    }

    def visit(self, node: ast.AST) -> Iterator[Finding]:
        if self.ctx.module in self.ALLOWED_MODULES:
            return
        key_node: Optional[ast.AST] = None
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain in (("os", "environ", "get"), ("os", "getenv")) and node.args:
                key_node = node.args[0]
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            chain = _attr_chain(node.value)
            if chain == ("os", "environ"):
                key_node = node.slice
        if key_node is None:
            return
        key = self.ctx.resolve_str(key_node)
        if key is None or not key.startswith("REPRO_"):
            return
        yield self.finding(
            node,
            f"read of {key!r} outside the runtime/registry modules: config "
            "must flow through repro.configure (repro.runtime) or an explicit "
            "argument",
        )


# ---------------------------------------------------------------------- #
@register_rule
class MutatorVersionBump(Rule):
    """REP104: every adjacency mutation must invalidate the CSR/digest caches."""

    code = "REP104"
    name = "mutator-version-bump"
    summary = (
        "WeightedGraph method mutates `_adjacency` without bumping `_version`, "
        "so frozen CSR snapshots and content digests go stale"
    )
    scope = "all"
    node_types = (ast.ClassDef,)

    TARGET_CLASS = "WeightedGraph"
    MUTATING_METHODS = {"pop", "popitem", "clear", "update", "setdefault"}

    def visit(self, node: ast.ClassDef) -> Iterator[Finding]:
        if node.name != self.TARGET_CLASS:
            return
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if self._mutates_adjacency(stmt) and not self._bumps_version(stmt):
                yield self.finding_at(
                    stmt.lineno,
                    stmt.col_offset,
                    f"{node.name}.{stmt.name} mutates `self._adjacency` without "
                    "bumping `self._version`: cached CSR snapshots and content "
                    "digests will serve stale data",
                )

    # ------------------------------------------------------------------ #
    def _roots_at_adjacency(self, node: ast.AST) -> bool:
        """True if ``node`` is ``self._adjacency`` under any subscript chain."""
        while isinstance(node, ast.Subscript):
            node = node.value
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "_adjacency"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _mutates_adjacency(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in self.MUTATING_METHODS and self._roots_at_adjacency(
                    node.func.value
                ):
                    return True
                continue
            else:
                continue
            for target in targets:
                # Only *container* mutations count: rebinding the attribute
                # itself (``self._adjacency = {}`` in __init__) is
                # initialization, not a mutation of shared state.
                if isinstance(target, ast.Subscript) and self._roots_at_adjacency(
                    target
                ):
                    return True
        return False

    def _bumps_version(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, (ast.AugAssign, ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "_version"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False


# ---------------------------------------------------------------------- #
@register_rule
class UnregisteredSubclass(Rule):
    """REP105: defining an engine/backend without registering it is dead code."""

    code = "REP105"
    name = "unregistered-subclass"
    summary = (
        "ExecutionEngine/KernelBackend/QuantumBackend subclass defined but "
        "never passed to register_engine/register_backend in its module"
    )
    scope = "src"
    node_types = (ast.ClassDef, ast.Call, ast.Assign)

    #: Base-name -> required registration function.  Suffix matching keeps
    #: subclass-of-subclass chains (ScipyBackend(NumpyBackend)) covered
    #: without enumerating every concrete class.
    EXACT_BASES = {
        "ExecutionEngine": "register_engine",
        "KernelBackend": "register_backend",
        "QuantumBackend": "register_backend",
    }
    SUFFIX_BASES = (("Engine", "register_engine"), ("Backend", "register_backend"))

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        #: class name -> (register fn, ClassDef node)
        self._candidates: Dict[str, Tuple[str, ast.ClassDef]] = {}
        #: register fn -> names appearing in its call arguments
        self._registered: Dict[str, Set[str]] = {}
        #: variable name -> class name, from ``inst = Cls(...)`` assignments
        self._aliases: Dict[str, str] = {}

    def visit(self, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.ClassDef):
            self._visit_class(node)
        elif isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, ast.Assign):
            self._visit_assign(node)
        return iter(())

    def _visit_class(self, node: ast.ClassDef) -> None:
        # Only module-level classes participate: nested/local classes are
        # helpers by construction.
        if self.ctx.in_function or self.ctx.class_stack:
            return
        for base in node.bases:
            base_name = (
                base.id
                if isinstance(base, ast.Name)
                else base.attr
                if isinstance(base, ast.Attribute)
                else None
            )
            if base_name is None:
                continue
            register_fn = self.EXACT_BASES.get(base_name)
            if register_fn is None:
                for suffix, fn in self.SUFFIX_BASES:
                    if base_name.endswith(suffix):
                        register_fn = fn
                        break
            if register_fn is not None:
                self._candidates[node.name] = (register_fn, node)
                return

    def _visit_call(self, node: ast.Call) -> None:
        fn_name = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else node.func.attr
            if isinstance(node.func, ast.Attribute)
            else None
        )
        if fn_name not in ("register_engine", "register_backend"):
            return
        names = self._registered.setdefault(fn_name, set())
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)

    def _visit_assign(self, node: ast.Assign) -> None:
        if (
            isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._aliases[target.id] = node.value.func.id

    def finish(self) -> Iterator[Finding]:
        for cls_name, (register_fn, node) in sorted(self._candidates.items()):
            referenced = self._registered.get(register_fn, set())
            resolved = referenced | {
                self._aliases[name] for name in referenced if name in self._aliases
            }
            if cls_name not in resolved:
                yield self.finding(
                    node,
                    f"class {cls_name} subclasses a registry base but is never "
                    f"passed to {register_fn}() in this module: the registry "
                    "cannot route to it",
                )


# ---------------------------------------------------------------------- #
@register_rule
class GlobalRandomCall(Rule):
    """REP106: the shared module-global random stream breaks determinism."""

    code = "REP106"
    name = "global-random-call"
    summary = (
        "call into the module-global `random.*` stream: seed an explicit "
        "random.Random (or route through QuantumRng) so runs are replayable"
    )
    scope = "src"
    node_types = (ast.Call,)

    #: Constructors/classes on the module are fine -- the rule targets the
    #: functions that consume the shared global state.
    ALLOWED_ATTRS = {"Random", "SystemRandom"}
    ALLOWED_MODULES = {"repro.quantum.rng"}

    def visit(self, node: ast.Call) -> Iterator[Finding]:
        if self.ctx.module in self.ALLOWED_MODULES:
            return
        if "random" not in self.ctx.imported_roots:
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr not in self.ALLOWED_ATTRS
        ):
            yield self.finding(
                node,
                f"`random.{func.attr}(...)` draws from the shared module-global "
                "stream, so results depend on import order and unrelated "
                "callers; use an explicit seeded random.Random or QuantumRng",
            )
