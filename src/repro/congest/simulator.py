"""The synchronous round scheduler with round / message / bandwidth accounting.

The simulator executes a :class:`~repro.congest.algorithm.NodeAlgorithm`
round by round, exactly as the CONGEST model prescribes (Section 2.2 of the
paper):

1. messages queued in round ``r - 1`` are delivered at the start of round
   ``r``;
2. every non-halted node runs its local computation and queues at most one
   message per incident edge;
3. the algorithm terminates when every node has halted.

Besides the plain round count, the simulator reports a *congestion-adjusted*
round count: in each round, each directed edge is charged
``ceil(message_bits / B)`` sub-rounds, and the round costs the maximum charge
over all edges.  A protocol that respects the ``O(log n)``-bit bandwidth has
identical plain and adjusted counts; a protocol that ships a larger payload in
one "round" is automatically charged the rounds it would need to pipeline that
payload.  All round-complexity numbers quoted in the benchmarks are the
congestion-adjusted counts.

Since the engine refactor, :class:`Simulator` is a thin facade: the actual
round loop lives in one of the pluggable execution engines under
:mod:`repro.congest.engine` (``sparse`` by default, the vectorized ``dense``
engine for protocols with a structured message schema, the shard-partitioned
``sharded`` engine -- ``REPRO_SHARDS`` shards, optionally executed by
``REPRO_SHARD_WORKERS`` forked worker processes -- and the pinned ``legacy``
seed loop).  Every engine produces bit-identical :class:`RoundReport`
numbers and identical outputs, so which engine runs is purely a performance
decision -- overridable per call (``engine=``), per process
(:func:`repro.congest.engine.force_engine`) or per environment
(``REPRO_ENGINE``).

In sharded worker mode, intra-block messages are retained inside the worker
that produced them (only boundary bundles and per-shard accounting partials
cross the coordinator pipes), and consecutive ``run`` calls on the same
network reuse a persistent forked worker pool instead of re-forking per run
-- pin one explicitly with :func:`repro.congest.shard_worker_pool` for
deterministic teardown.  Attaching an ``observer`` transparently falls back
to fully materialized rounds so the observed message stream stays identical
to the sparse engine's.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine import resolve_engine
from repro.congest.engine.types import (
    RoundLimitExceeded,
    RoundReport,
    SimulationResult,
)
from repro.congest.network import Network

__all__ = ["RoundReport", "SimulationResult", "Simulator", "RoundLimitExceeded"]


class Simulator:
    """Synchronous executor for CONGEST node programs.

    Parameters
    ----------
    network:
        The communication topology and bandwidth configuration.
    max_rounds:
        Safety limit; exceeding it raises :class:`RoundLimitExceeded` so a
        buggy protocol cannot hang the benchmarks.  The default scales as
        ``50 * n^2 + 1000`` which comfortably covers every protocol here.
    """

    def __init__(self, network: Network, max_rounds: Optional[int] = None) -> None:
        self._network = network
        if max_rounds is None:
            max_rounds = 50 * network.num_nodes**2 + 1000
        self._max_rounds = max_rounds

    @property
    def network(self) -> Network:
        """The network being simulated."""
        return self._network

    def run(
        self,
        algorithm: NodeAlgorithm,
        initial_memory: Optional[Dict[int, Dict[str, Any]]] = None,
        halt_on_quiescence: bool = False,
        observer: Optional[Any] = None,
        engine: Optional[str] = None,
    ) -> SimulationResult:
        """Execute ``algorithm`` until every node halts.

        Parameters
        ----------
        algorithm:
            The node program (one shared instance; all state in contexts).
        initial_memory:
            Optional per-node pre-loaded memory, used to model information a
            node already holds when the protocol starts (e.g. results of a
            previous phase).  Keys are node ids, values are dicts merged into
            ``ctx.memory`` before ``initialize``.
        halt_on_quiescence:
            When ``True``, the execution also stops once no messages are in
            flight after a round (all remaining nodes are halted).  This is a
            simulator convenience for flooding-style protocols whose natural
            termination is "no further improvements"; the extra round it may
            save/charge never changes the asymptotics reported in the
            benchmarks.
        observer:
            Optional callable ``observer(round_number, delivered_messages)``
            invoked once per round with the list of messages delivered in
            that round.  Used by the Server-model reduction (Lemma 4.1) to
            count the communication that crosses the Alice/Bob/server
            ownership boundary; it never affects the execution itself.
        engine:
            Optional explicit engine name (``"sparse"``, ``"dense"``,
            ``"sharded"``, ``"legacy"``).  Defaults to the forced / ``REPRO_ENGINE`` /
            ``auto`` selection; an explicitly named engine that cannot
            execute this run raises instead of falling back.

        Returns
        -------
        SimulationResult
            Node outputs, contexts and the round report.
        """
        selected = resolve_engine(
            engine, self._network, algorithm, initial_memory=initial_memory
        )
        return selected.run(
            self._network,
            algorithm,
            max_rounds=self._max_rounds,
            initial_memory=initial_memory,
            halt_on_quiescence=halt_on_quiescence,
            observer=observer,
        )
