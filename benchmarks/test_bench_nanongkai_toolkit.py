"""E12 -- Appendix A: round costs of Nanongkai's toolkit (Algorithms 1-5).

For a fixed workload the benchmark measures the congestion-adjusted rounds of
each toolkit stage and compares it against the bound stated in the paper's
Appendix A (with the polylog factors spelled out as a reference envelope):

=============  =========================================
Algorithm 2    ``O(L)``                 (bounded-distance SSSP)
Algorithm 1    ``Õ(ℓ/ε)``               (bounded-hop SSSP)
Algorithm 3    ``Õ(D + ℓ/ε + |S|)``     (multi-source)
Algorithm 4    ``Õ(D + |S|·k)``         (overlay embedding)
Algorithm 5    ``Õ(|S|·D/(ε·k) + |S|)`` (overlay SSSP)
=============  =========================================

The asserted property is that each measured cost stays within a constant
times its envelope (the envelope already includes the level count the ``Õ``
hides), and that the stage ordering matches Lemma 3.5's cost decomposition.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.analysis import render_table
from repro.congest import Network
from repro.graphs import low_diameter_expander
from repro.graphs.rounding import rounding_levels
from repro.nanongkai import (
    SkeletonApproximator,
    bounded_distance_sssp_protocol,
    bounded_hop_sssp_protocol,
    multi_source_bounded_hop_protocol,
)

HEADERS = ["stage", "measured congested rounds", "reference envelope", "within"]


def _sweep():
    graph = low_diameter_expander(40, degree=6, max_weight=15, seed=4)
    network = Network(graph)
    diameter_d = network.unweighted_diameter()
    epsilon = 0.5
    hop_bound = 12
    skeleton = [0, 5, 11, 17, 23, 29, 35]
    shortcut_k = 3
    levels = rounding_levels(graph, hop_bound, epsilon)
    window = (1 + 2 / epsilon) * hop_bound

    rows = []

    def add(stage, measured, envelope):
        rows.append([stage, measured, round(envelope), "yes" if measured <= envelope else "NO"])

    # Algorithm 2.
    bound = 40
    _, report2 = bounded_distance_sssp_protocol(network, 0, bound)
    add("Algorithm 2 (bounded-distance SSSP, L=40)", report2.congested_rounds, 4 * (bound + 2))

    # Algorithm 1.
    _, report1 = bounded_hop_sssp_protocol(network, 0, hop_bound, epsilon)
    add(
        f"Algorithm 1 (bounded-hop SSSP, l={hop_bound}, eps={epsilon})",
        report1.congested_rounds,
        4 * levels * (window + 2),
    )

    # Algorithm 3.
    _, report3 = multi_source_bounded_hop_protocol(
        network, skeleton, hop_bound, epsilon, seed=1
    )
    envelope3 = 6 * (diameter_d + levels * (window + 2) + len(skeleton) * math.log2(40) + 40)
    add(
        f"Algorithm 3 (multi-source, |S|={len(skeleton)})",
        report3.congested_rounds,
        envelope3,
    )

    # Algorithms 4 and 5 via the skeleton approximator (also measures T0/T1/T2).
    approximator = SkeletonApproximator(
        network, skeleton, epsilon=epsilon, hop_bound=hop_bound, k=shortcut_k, seed=2
    )
    embedding_rounds = approximator.embedding.report.congested_rounds
    add(
        f"Algorithm 4 (overlay embedding, k={shortcut_k})",
        embedding_rounds,
        10 * (diameter_d + len(skeleton) * shortcut_k + len(skeleton) * len(skeleton)),
    )

    setup = approximator.setup_report()
    overlay_levels = max(
        1, math.ceil(math.log2(2 * len(skeleton) * max(1, network.max_weight() * 40) / epsilon))
    )
    overlay_window = (1 + 2 / epsilon) * approximator.embedding.hop_bound
    envelope5 = 4 * overlay_levels * (overlay_window + 2) * (diameter_d + 2) + 10 * (
        diameter_d + len(skeleton)
    )
    add("Algorithm 5 (overlay SSSP, one source)", setup.congested_rounds, envelope5)

    evaluation = approximator.evaluation_report()
    add("Evaluation (max-convergecast)", evaluation.congested_rounds, 6 * (diameter_d + 2))

    return rows, approximator


def test_nanongkai_toolkit_round_costs(benchmark, record_artifact):
    rows, approximator = run_once(benchmark, _sweep)
    table = render_table(
        HEADERS, rows, title="Appendix A: measured round costs of the toolkit stages"
    )
    record_artifact("nanongkai_toolkit", table)

    for row in rows:
        assert row[3] == "yes", row

    # Lemma 3.5 cost ordering: Initialization (Algorithms 3+4) dominates a
    # single Setup (Algorithm 5), which dominates one Evaluation (O(D)).
    t0 = approximator.initialization_report.congested_rounds
    t1 = approximator.setup_report().congested_rounds
    t2 = approximator.evaluation_report().congested_rounds
    assert t0 > t2
    assert t1 > t2
