"""Standard single- and multi-qubit gate matrices.

Gates are :class:`GateMatrix` values -- immutable, dependency-free complex
matrices backed by nested tuples, so this module imports without NumPy (the
backend registry's pure-Python tier needs ``import repro.quantum`` to work on
a bare interpreter).  ``GateMatrix`` supports ``@`` against other gates and
against plain sequences/arrays, and converts transparently to a NumPy array
(``np.asarray`` / ``np.allclose``) when NumPy is present.

The library only needs a handful of gates (Hadamard for uniform
superpositions, X/Z for oracles and diffusion, controlled versions for
multi-qubit constructions), but the usual textbook set is provided for
completeness and for the tests that check unitarity and algebraic identities.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterator, Sequence, Tuple, Union

__all__ = [
    "GateMatrix",
    "IDENTITY",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "HADAMARD",
    "S_GATE",
    "T_GATE",
    "phase_gate",
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "controlled",
    "is_unitary",
    "matrix_rows",
]

MatrixLike = Union["GateMatrix", Sequence[Sequence[complex]]]


def matrix_rows(matrix: MatrixLike) -> Tuple[Tuple[complex, ...], ...]:
    """Normalise any matrix-like object into nested tuples of ``complex``.

    Accepts :class:`GateMatrix`, nested sequences, and NumPy arrays (which
    iterate row by row).  Raises :class:`ValueError` for ragged input and
    :class:`TypeError` for scalars.
    """
    if isinstance(matrix, GateMatrix):
        return matrix.rows
    rows = tuple(tuple(complex(value) for value in row) for row in matrix)
    if rows and any(len(row) != len(rows[0]) for row in rows):
        raise ValueError("matrix rows must all have the same length")
    return rows


class GateMatrix:
    """An immutable complex matrix with ``@`` and NumPy interop.

    Stored as nested tuples; ``gate[i][j]`` indexes entries, ``gate @ other``
    multiplies against another matrix (returning a :class:`GateMatrix`) or a
    flat vector (returning a tuple of ``complex``), and ``__array__`` lets
    ``np.asarray(gate)`` work without this module importing NumPy.
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: MatrixLike) -> None:
        self._rows = matrix_rows(rows)

    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> Tuple[Tuple[complex, ...], ...]:
        """The entries as nested tuples."""
        return self._rows

    @property
    def shape(self) -> Tuple[int, int]:
        """``(#rows, #columns)``."""
        return (len(self._rows), len(self._rows[0]) if self._rows else 0)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple[complex, ...]]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Tuple[complex, ...]:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GateMatrix):
            return self._rows == other._rows
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GateMatrix({[list(row) for row in self._rows]!r})"

    def __array__(self, dtype=None, copy=None):  # pragma: no cover - numpy hook
        import numpy

        return numpy.array(self._rows, dtype=complex if dtype is None else dtype)

    # ------------------------------------------------------------------ #
    def conjugate_transpose(self) -> "GateMatrix":
        """The Hermitian adjoint."""
        rows, cols = self.shape
        return GateMatrix(
            tuple(
                tuple(self._rows[i][j].conjugate() for i in range(rows))
                for j in range(cols)
            )
        )

    def __matmul__(self, other):
        rows, inner = self.shape
        first = None
        for element in other:
            first = element
            break
        if first is not None and not _is_row(first):
            # Matrix @ vector.
            vector = tuple(complex(value) for value in other)
            if len(vector) != inner:
                raise ValueError(
                    f"cannot multiply {self.shape} matrix by length-{len(vector)} vector"
                )
            return tuple(
                sum(row[j] * vector[j] for j in range(inner)) for row in self._rows
            )
        other_rows = matrix_rows(other)
        if len(other_rows) != inner:
            raise ValueError(
                f"cannot multiply {self.shape} matrix by {len(other_rows)}-row matrix"
            )
        cols = len(other_rows[0]) if other_rows else 0
        return GateMatrix(
            tuple(
                tuple(
                    sum(row[k] * other_rows[k][j] for k in range(inner))
                    for j in range(cols)
                )
                for row in self._rows
            )
        )

    def __rmatmul__(self, other):
        return GateMatrix(other) @ self


def _is_row(element: object) -> bool:
    """True when ``element`` looks like a row (an iterable, not a scalar)."""
    if isinstance(element, (int, float, complex)):
        return False
    return hasattr(element, "__len__") or hasattr(element, "__iter__")


IDENTITY = GateMatrix([[1, 0], [0, 1]])

PAULI_X = GateMatrix([[0, 1], [1, 0]])

PAULI_Y = GateMatrix([[0, -1j], [1j, 0]])

PAULI_Z = GateMatrix([[1, 0], [0, -1]])

_INV_SQRT2 = 1 / math.sqrt(2)

HADAMARD = GateMatrix(
    [[_INV_SQRT2, _INV_SQRT2], [_INV_SQRT2, -_INV_SQRT2]]
)

S_GATE = GateMatrix([[1, 0], [0, 1j]])

T_GATE = GateMatrix([[1, 0], [0, cmath.exp(1j * math.pi / 4)]])


def phase_gate(theta: float) -> GateMatrix:
    """Return ``diag(1, e^{i theta})``."""
    return GateMatrix([[1, 0], [0, cmath.exp(1j * theta)]])


def rotation_x(theta: float) -> GateMatrix:
    """Rotation by ``theta`` about the X axis of the Bloch sphere."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return GateMatrix([[c, -1j * s], [-1j * s, c]])


def rotation_y(theta: float) -> GateMatrix:
    """Rotation by ``theta`` about the Y axis of the Bloch sphere."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return GateMatrix([[c, -s], [s, c]])


def rotation_z(theta: float) -> GateMatrix:
    """Rotation by ``theta`` about the Z axis of the Bloch sphere."""
    return GateMatrix(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]]
    )


def controlled(gate: MatrixLike) -> GateMatrix:
    """Return the controlled version of a single-qubit ``gate`` (4x4 matrix).

    The control qubit is the more significant one (little-endian convention of
    :class:`~repro.quantum.statevector.StateVector`).
    """
    rows = matrix_rows(gate)
    if len(rows) != 2 or len(rows[0]) != 2:
        raise ValueError(
            f"controlled() expects a 2x2 gate, got shape ({len(rows)}, "
            f"{len(rows[0]) if rows else 0})"
        )
    return GateMatrix(
        [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, rows[0][0], rows[0][1]],
            [0, 0, rows[1][0], rows[1][1]],
        ]
    )


def is_unitary(matrix: MatrixLike, atol: float = 1e-10) -> bool:
    """Return ``True`` if ``matrix`` is unitary within tolerance."""
    try:
        rows = matrix_rows(matrix)
    except (TypeError, ValueError):
        return False
    n = len(rows)
    if n == 0 or any(len(row) != n for row in rows):
        return False
    for i in range(n):
        for j in range(n):
            entry = sum(rows[k][i].conjugate() * rows[k][j] for k in range(n))
            target = 1.0 if i == j else 0.0
            if abs(entry - target) > atol:
                return False
    return True
