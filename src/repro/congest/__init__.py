"""The classical CONGEST model: a synchronous message-passing simulator.

The CONGEST model (Section 2.2 of the paper) is a synchronous network of
``n`` processors.  In every round each node may send one message of at most
``B = O(log n)`` bits to each neighbor, then perform unlimited local
computation.  The complexity measure is the number of rounds.

This subpackage provides:

* :class:`~repro.congest.network.Network` -- the communication topology plus
  bandwidth configuration.
* :class:`~repro.congest.algorithm.NodeAlgorithm` -- the per-node program
  interface (initialize / receive / send).
* :class:`~repro.congest.simulator.Simulator` -- the synchronous round
  scheduler with full round / message / bandwidth accounting.  It is a thin
  facade over the pluggable execution engines in
  :mod:`repro.congest.engine` (``sparse`` / ``dense`` / ``sharded`` /
  ``legacy``, selected per run or via ``REPRO_ENGINE``); every engine
  produces bit-identical round reports.
* Building-block protocols used throughout the paper's constructions:
  broadcast, convergecast, BFS-tree construction and leader election in
  :mod:`repro.congest.primitives`.
* Classical distance-computation baselines (distributed BFS APSP, distributed
  Bellman-Ford SSSP/APSP, eccentricity/diameter/radius protocols) in
  :mod:`repro.congest.apsp` and :mod:`repro.congest.sssp` -- these populate
  the classical rows of Table 1.
"""

from repro.congest.network import Network, CongestConfig, ShardView
from repro.congest.message import Message, message_size_bits, encode_value
from repro.congest.algorithm import NodeAlgorithm, NodeContext
from repro.congest.simulator import Simulator, RoundReport, SimulationResult
from repro.congest.engine import (
    ENGINE_ENV_VAR,
    ExecutionEngine,
    MinPlusSchema,
    TreeSchema,
    available_engines,
    force_engine,
    get_engine,
    register_engine,
)
from repro.congest.engine.sharded import (
    ShardWorkerError,
    close_worker_pools,
    shard_worker_pool,
)
from repro.congest.primitives import (
    build_bfs_tree,
    broadcast_from,
    convergecast_max,
    convergecast_min,
    convergecast_sum,
    elect_leader,
    BfsTree,
)
from repro.congest.sssp import (
    distributed_bellman_ford,
    distributed_bfs,
    distributed_weighted_sssp,
)
from repro.congest.apsp import (
    distributed_unweighted_apsp,
    distributed_weighted_apsp,
    classical_diameter_protocol,
    classical_radius_protocol,
    classical_eccentricity_protocol,
)

__all__ = [
    "Network",
    "CongestConfig",
    "ShardView",
    "Message",
    "message_size_bits",
    "encode_value",
    "NodeAlgorithm",
    "NodeContext",
    "Simulator",
    "RoundReport",
    "SimulationResult",
    "ENGINE_ENV_VAR",
    "ExecutionEngine",
    "MinPlusSchema",
    "TreeSchema",
    "available_engines",
    "force_engine",
    "get_engine",
    "register_engine",
    "ShardWorkerError",
    "close_worker_pools",
    "shard_worker_pool",
    "build_bfs_tree",
    "broadcast_from",
    "convergecast_max",
    "convergecast_min",
    "convergecast_sum",
    "elect_leader",
    "BfsTree",
    "distributed_bellman_ford",
    "distributed_bfs",
    "distributed_weighted_sssp",
    "distributed_unweighted_apsp",
    "distributed_weighted_apsp",
    "classical_diameter_protocol",
    "classical_radius_protocol",
    "classical_eccentricity_protocol",
]
