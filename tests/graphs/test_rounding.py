"""Tests for the Lemma 3.2 weight-rounding scheme."""

from __future__ import annotations

import math

import pytest

from repro.graphs import (
    bounded_hop_distances,
    dijkstra,
    path_graph,
    random_weighted_graph,
)
from repro.graphs.rounding import (
    approx_bounded_hop_distance,
    approx_bounded_hop_distances_from,
    rounded_weights,
    rounding_levels,
    verify_lemma_3_2,
)

INF = math.inf


class TestRoundingLevels:
    def test_positive(self, weighted_random_graph):
        assert rounding_levels(weighted_random_graph, 5, 0.5) >= 1

    def test_more_levels_for_larger_weights(self):
        small = random_weighted_graph(num_nodes=12, max_weight=2, seed=1)
        large = random_weighted_graph(num_nodes=12, max_weight=1000, seed=1)
        assert rounding_levels(large, 4, 0.5) > rounding_levels(small, 4, 0.5)

    def test_invalid_arguments(self, weighted_random_graph):
        with pytest.raises(ValueError):
            rounding_levels(weighted_random_graph, 0, 0.5)
        with pytest.raises(ValueError):
            rounding_levels(weighted_random_graph, 3, 0)


class TestRoundedWeights:
    def test_weights_positive_integers(self, weighted_random_graph):
        rounded = rounded_weights(weighted_random_graph, hop_bound=5, epsilon=0.5, level=3)
        assert all(isinstance(w, int) and w >= 1 for _, _, w in rounded.edges())

    def test_level_zero_scales_up(self, triangle_graph):
        rounded = rounded_weights(triangle_graph, hop_bound=4, epsilon=0.5, level=0)
        # w_0(e) = ceil(2*4*w / 0.5) = 16*w
        assert rounded.weight(0, 1) == 16 * 3

    def test_high_level_collapses_to_one(self, triangle_graph):
        rounded = rounded_weights(triangle_graph, hop_bound=4, epsilon=0.5, level=30)
        assert all(w == 1 for _, _, w in rounded.edges())

    def test_negative_level_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            rounded_weights(triangle_graph, 4, 0.5, -1)


class TestApproxBoundedHopDistance:
    @pytest.mark.parametrize("epsilon", [0.25, 0.5, 1.0])
    def test_sandwich_inequality(self, weighted_random_graph, epsilon):
        hop_bound = 6
        source = 0
        approx = approx_bounded_hop_distances_from(
            weighted_random_graph, source, hop_bound, epsilon
        )
        exact = dijkstra(weighted_random_graph, source)
        hop_limited = bounded_hop_distances(weighted_random_graph, source, hop_bound)
        for node in weighted_random_graph.nodes:
            if math.isinf(hop_limited[node]):
                continue
            assert approx[node] >= exact[node] - 1e-9
            assert approx[node] <= (1 + epsilon) * hop_limited[node] + 1e-9

    def test_source_is_zero(self, weighted_random_graph):
        approx = approx_bounded_hop_distances_from(weighted_random_graph, 3, 4, 0.5)
        assert approx[3] == 0

    def test_far_node_never_underestimated(self):
        # Node 5 has no 2-hop path from 0; Lemma 3.2's upper constraint is
        # vacuous there, but the lower bound d~ >= d must still hold (the
        # coarsest rounding level can certify it with a rescaled value).
        graph = path_graph(6, max_weight=1)
        approx = approx_bounded_hop_distances_from(graph, 0, 2, 0.5)
        exact = dijkstra(graph, 0)
        assert approx[5] >= exact[5] - 1e-9
        assert approx[2] < INF

    def test_single_pair_wrapper(self, weighted_random_graph):
        table = approx_bounded_hop_distances_from(weighted_random_graph, 0, 5, 0.5)
        single = approx_bounded_hop_distance(weighted_random_graph, 0, 7, 5, 0.5)
        assert single == table[7]

    def test_unknown_source_raises(self, triangle_graph):
        with pytest.raises(KeyError):
            approx_bounded_hop_distances_from(triangle_graph, 9, 2, 0.5)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_verify_lemma_3_2_helper(self, seed):
        graph = random_weighted_graph(num_nodes=16, max_weight=25, seed=seed)
        assert verify_lemma_3_2(graph, source=0, hop_bound=5, epsilon=0.5)

    def test_tighter_epsilon_not_worse(self, weighted_random_graph):
        loose = approx_bounded_hop_distances_from(weighted_random_graph, 0, 6, 1.0)
        tight = approx_bounded_hop_distances_from(weighted_random_graph, 0, 6, 0.1)
        exact = dijkstra(weighted_random_graph, 0)
        hop_limited = bounded_hop_distances(weighted_random_graph, 0, 6)
        for node in weighted_random_graph.nodes:
            if math.isinf(hop_limited[node]):
                continue
            # Both stay within their own guarantee, and the tighter epsilon's
            # guarantee is stronger.
            assert tight[node] <= (1 + 0.1) * hop_limited[node] + 1e-9
            assert loose[node] >= exact[node] - 1e-9
