"""Classical all-pairs shortest paths and diameter/radius protocols.

These populate the *classical* rows of Table 1:

* :func:`distributed_unweighted_apsp` -- every node learns its hop distance to
  every other node.  Conceptually this is ``n`` concurrent BFS floods; the
  simulator's congestion accounting charges the contention on each edge, which
  reproduces the classical ``Θ̃(n)`` behaviour (Holzer-Wattenhofer / Peleg-
  Roditty-Tal achieve ``O(n)`` with careful pipelining; our measured
  congestion-adjusted rounds land in the same near-linear regime).
* :func:`distributed_weighted_apsp` -- every node learns its exact weighted
  distance to every other node via concurrent Bellman-Ford relaxations (the
  role played by Bernstein-Nanongkai's ``Õ(n)`` algorithm in the paper; see
  DESIGN.md for the substitution note).
* :func:`classical_diameter_protocol` / :func:`classical_radius_protocol` --
  APSP, then local eccentricities, then a max/min convergecast and a broadcast
  so that *every node* outputs the answer (the paper's success criterion).
* :func:`classical_eccentricity_protocol` -- the eccentricity of a single
  node, the ``Θ̃(√n)``-hard primitive discussed in the introduction (here it
  costs an SSSP plus a convergecast).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.congest.network import Network
from repro.congest.primitives import (
    broadcast_from,
    build_bfs_tree,
    convergecast_max,
    convergecast_min,
)
from repro.congest.simulator import RoundReport, Simulator
from repro.congest.sssp import (
    _BellmanFordAlgorithm,
    multi_source_bellman_ford,
)

__all__ = [
    "distributed_unweighted_apsp",
    "distributed_weighted_apsp",
    "classical_diameter_protocol",
    "classical_radius_protocol",
    "classical_eccentricity_protocol",
]


def distributed_unweighted_apsp(
    network: Network,
) -> Tuple[Dict[int, Dict[int, float]], RoundReport]:
    """Hop distances between all pairs, learned locally by every node.

    Returns ``(distances, report)`` where ``distances[v][u]`` is the hop
    distance from ``u`` as known at node ``v``.
    """
    unit_network = network.unit_weight_companion()
    distances, report = multi_source_bellman_ford(unit_network, unit_network.nodes)
    report.protocol = "unweighted-apsp"
    return distances, report


def distributed_weighted_apsp(
    network: Network,
) -> Tuple[Dict[int, Dict[int, float]], RoundReport]:
    """Exact weighted distances between all pairs, learned locally by every node."""
    distances, report = multi_source_bellman_ford(network, network.nodes)
    report.protocol = "weighted-apsp"
    return distances, report


def _eccentricities_from_apsp(
    distances: Dict[int, Dict[int, float]]
) -> Dict[int, float]:
    """Each node's eccentricity computed from its local distance vector."""
    return {node: max(vector.values()) for node, vector in distances.items()}


def classical_diameter_protocol(
    network: Network, weighted: bool = True
) -> Tuple[float, RoundReport]:
    """Exact diameter via APSP + convergecast + broadcast.

    Every node ends up knowing the diameter; the returned report covers the
    complete protocol (APSP, BFS tree, convergecast, broadcast).
    """
    apsp = distributed_weighted_apsp if weighted else distributed_unweighted_apsp
    distances, apsp_report = apsp(network)
    eccentricities = _eccentricities_from_apsp(distances)

    leader = min(network.nodes)
    tree, tree_report = build_bfs_tree(network, leader)
    diameter_value, cc_report = convergecast_max(network, eccentricities, tree=tree)
    _, bc_report = broadcast_from(network, leader, diameter_value, tree=tree)

    report = RoundReport.sequential([apsp_report, tree_report, cc_report, bc_report])
    report.protocol = "classical-diameter" + ("-weighted" if weighted else "")
    return diameter_value, report


def classical_radius_protocol(
    network: Network, weighted: bool = True
) -> Tuple[float, RoundReport]:
    """Exact radius via APSP + convergecast + broadcast (all nodes learn it)."""
    apsp = distributed_weighted_apsp if weighted else distributed_unweighted_apsp
    distances, apsp_report = apsp(network)
    eccentricities = _eccentricities_from_apsp(distances)

    leader = min(network.nodes)
    tree, tree_report = build_bfs_tree(network, leader)
    radius_value, cc_report = convergecast_min(network, eccentricities, tree=tree)
    _, bc_report = broadcast_from(network, leader, radius_value, tree=tree)

    report = RoundReport.sequential([apsp_report, tree_report, cc_report, bc_report])
    report.protocol = "classical-radius" + ("-weighted" if weighted else "")
    return radius_value, report


def classical_eccentricity_protocol(
    network: Network, node: int, weighted: bool = True
) -> Tuple[float, RoundReport]:
    """The eccentricity of a single node, computed distributively.

    Runs an exact SSSP from ``node`` (weighted Bellman-Ford or BFS) followed
    by a max-convergecast of the learned distances.  This is the primitive
    whose ``Θ̃(√n)`` quantum round complexity (Elkin et al. lower bound, Le
    Gall-Magniez upper bound) motivates the paper's set-sampling approach: one
    cannot afford to evaluate it separately for every node.
    """
    if node not in network.graph:
        raise KeyError(f"node {node} is not in the network")
    target_network = network if weighted else network.unit_weight_companion()
    simulator = Simulator(target_network)
    result = simulator.run(
        _BellmanFordAlgorithm([node]), halt_on_quiescence=True
    )
    distances = {v: out[node] for v, out in result.outputs.items()}
    sssp_report = result.report

    value, cc_report = convergecast_max(network, distances, root=node)
    report = RoundReport.sequential([sssp_report, cc_report])
    report.protocol = "eccentricity"
    return value, report
