"""A small, explicit weighted-graph data structure.

The reproduction deliberately does not depend on :mod:`networkx` for its core
data structure: the CONGEST simulator needs cheap, predictable access to
adjacency lists and edge weights, and the graph class is a natural place to
hang the invariants the paper relies on (positive integer weights, undirected
edges, no self loops).  A :meth:`WeightedGraph.to_networkx` bridge is provided
for cross-checking against networkx in the test suite.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["WeightedGraph", "Edge"]

#: An undirected edge ``(u, v, weight)`` with ``u < v`` in canonical form.
Edge = Tuple[int, int, int]


def _canonical(u: int, v: int) -> Tuple[int, int]:
    """Return the canonical (sorted) form of an undirected node pair."""
    return (u, v) if u <= v else (v, u)


class WeightedGraph:
    """An undirected graph with positive integer edge weights.

    Nodes are arbitrary hashable integers.  Weights must be positive integers,
    matching the paper's ``w : E -> N+``.  The class supports the handful of
    operations the rest of the library needs: adjacency iteration, weight
    lookup, node/edge counting, subgraph extraction and conversion to
    networkx.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of ``(u, v, weight)`` triples.

    Examples
    --------
    >>> g = WeightedGraph()
    >>> g.add_edge(0, 1, 5)
    >>> g.add_edge(1, 2, 3)
    >>> g.weight(0, 1)
    5
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    def __init__(
        self,
        nodes: Optional[Iterable[int]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._adjacency: Dict[int, Dict[int, int]] = {}
        #: Monotone mutation counter; :mod:`repro.kernels.csr` keys its frozen
        #: CSR snapshot cache on this so any mutation invalidates the snapshot.
        self._version: int = 0
        #: Memoized ``(version, digest)`` pair backing :meth:`content_digest`.
        self._digest_cache: Optional[Tuple[int, str]] = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v, w in edges:
                self.add_edge(u, v, w)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: int) -> None:
        """Add ``node`` to the graph (a no-op if it already exists)."""
        if node not in self._adjacency:
            self._adjacency[node] = {}
            self._version += 1

    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Add the undirected edge ``{u, v}`` with the given positive weight.

        Adding an edge that already exists overwrites its weight.  Self loops
        are rejected because the paper's graphs are simple.
        """
        if u == v:
            raise ValueError(f"self loops are not allowed (node {u})")
        if not isinstance(weight, (int,)) or isinstance(weight, bool):
            raise TypeError(f"edge weight must be an int, got {type(weight).__name__}")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        self.add_node(u)
        self.add_node(v)
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        self._version += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}``; raises ``KeyError`` if absent."""
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._version += 1

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and all incident edges."""
        for neighbor in list(self._adjacency[node]):
            del self._adjacency[neighbor][node]
        del self._adjacency[node]
        self._version += 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[int]:
        """A list of the graph's nodes in insertion order."""
        return list(self._adjacency)

    def __contains__(self, node: int) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the edge ``{u, v}`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def weight(self, u: int, v: int) -> int:
        """Return the weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._adjacency[u][v]

    def neighbors(self, node: int) -> Iterator[int]:
        """Iterate over the neighbors of ``node``."""
        return iter(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Return the number of neighbors of ``node``."""
        return len(self._adjacency[node])

    def incident_edges(self, node: int) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(neighbor, weight)`` pairs incident to ``node``."""
        return iter(self._adjacency[node].items())

    def edges(self) -> Iterator[Edge]:
        """Iterate over canonical ``(u, v, weight)`` triples, each edge once."""
        for u, neighbors in self._adjacency.items():
            for v, w in neighbors.items():
                if u <= v:
                    yield (u, v, w)

    def content_digest(self) -> str:
        """SHA-256 hex digest of the graph's canonical node/edge content.

        The digest is computed over the *sorted* node list and the sorted
        canonical edge list ``(u, v, w)`` with ``u <= v``, so two graphs that
        compare equal under ``==`` (same node set, same edge set) share a
        digest regardless of insertion order.  Node *labels* are part of the
        content: an isomorphic graph with relabeled nodes hashes differently,
        because protocol results (distances per node id, elected leader ids)
        depend on the labels, not just the shape.  The service-layer result
        cache (:mod:`repro.service.cache`) keys on this digest.

        The digest is memoized on the mutation counter, so repeated calls on
        an unmodified graph are O(1) and any mutation transparently
        invalidates it.
        """
        if self._digest_cache is not None and self._digest_cache[0] == self._version:
            return self._digest_cache[1]
        hasher = hashlib.sha256()
        hasher.update(b"repro.WeightedGraph.v1\n")
        for node in sorted(self._adjacency):
            hasher.update(b"n %d\n" % node)
        for u, v, w in sorted(self.edges()):
            hasher.update(b"e %d %d %d\n" % (u, v, w))
        digest = hasher.hexdigest()
        self._digest_cache = (self._version, digest)
        return digest

    def max_weight(self) -> int:
        """Return the maximum edge weight (``0`` for an edgeless graph)."""
        return max((w for _, _, w in self.edges()), default=0)

    def total_weight(self) -> int:
        """Return the sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def copy(self) -> "WeightedGraph":
        """Return a deep copy of this graph."""
        clone = WeightedGraph(nodes=self.nodes)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def subgraph(self, nodes: Iterable[int]) -> "WeightedGraph":
        """Return the induced subgraph on ``nodes``."""
        selected = set(nodes)
        sub = WeightedGraph(nodes=selected)
        for u, v, w in self.edges():
            if u in selected and v in selected:
                sub.add_edge(u, v, w)
        return sub

    def with_unit_weights(self) -> "WeightedGraph":
        """Return a copy in which every edge weight is 1.

        This realises the ``w*`` weight function from Section 2.1 of the paper
        and is used to compute the *unweighted* diameter ``D_G`` of a network.
        """
        unit = WeightedGraph(nodes=self.nodes)
        for u, v, _ in self.edges():
            unit.add_edge(u, v, 1)
        return unit

    def reweighted(self, weight_fn) -> "WeightedGraph":
        """Return a copy with each edge weight mapped through ``weight_fn``.

        ``weight_fn`` receives ``(u, v, weight)`` and must return a positive
        integer.  Used for the rounding scheme of Lemma 3.2.
        """
        out = WeightedGraph(nodes=self.nodes)
        for u, v, w in self.edges():
            out.add_edge(u, v, weight_fn(u, v, w))
        return out

    def relabeled(self, mapping: Dict[int, int]) -> "WeightedGraph":
        """Return a copy with nodes renamed through ``mapping``.

        Nodes missing from ``mapping`` keep their labels.  The mapping must be
        injective on the graph's node set.
        """
        target = {node: mapping.get(node, node) for node in self.nodes}
        if len(set(target.values())) != len(target):
            raise ValueError("relabeling mapping is not injective on the node set")
        out = WeightedGraph(nodes=target.values())
        for u, v, w in self.edges():
            out.add_edge(target[u], target[v], w)
        return out

    # ------------------------------------------------------------------ #
    # Structure checks
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """Return ``True`` if the graph is connected (an empty graph is not)."""
        if not self._adjacency:
            return False
        start = next(iter(self._adjacency))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in self._adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self._adjacency)

    def connected_components(self) -> List[List[int]]:
        """Return the connected components as lists of nodes."""
        seen: set = set()
        components: List[List[int]] = []
        for start in self._adjacency:
            if start in seen:
                continue
            component = [start]
            seen.add(start)
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbor in self._adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        component.append(neighbor)
                        stack.append(neighbor)
            components.append(component)
        return components

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with a ``weight`` attribute."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        graph.add_weighted_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, graph, weight_attr: str = "weight") -> "WeightedGraph":
        """Build a :class:`WeightedGraph` from a networkx graph.

        Missing weight attributes default to 1; float weights are rejected so
        that the positive-integer invariant is preserved.
        """
        out = cls(nodes=graph.nodes())
        for u, v, data in graph.edges(data=True):
            weight = data.get(weight_attr, 1)
            if isinstance(weight, float):
                if not weight.is_integer():
                    raise ValueError(
                        f"edge ({u}, {v}) has non-integer weight {weight}"
                    )
                weight = int(weight)
            out.add_edge(u, v, weight)
        return out

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "WeightedGraph":
        """Build a graph from an iterable of ``(u, v, weight)`` triples."""
        return cls(edges=edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WeightedGraph(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        if set(self.nodes) != set(other.nodes):
            return False
        return set(self.edges()) == set(other.edges())

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("WeightedGraph is mutable and unhashable")
