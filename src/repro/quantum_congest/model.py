"""Round-cost bookkeeping for the distributed quantum optimization framework.

Lemma 3.1 of the paper charges

    ``T0 + O(sqrt(log(1/δ) / ρ)) * T``

rounds to find, with probability ``1 - δ``, an element whose ``f``-value is at
least the (unknown) threshold ``M``, provided the elements reaching ``M``
carry amplitude mass at least ``ρ``.  The classes and helpers here turn that
statement into explicit, auditable arithmetic over
:class:`~repro.congest.simulator.RoundReport` objects measured on the
classical simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.congest.simulator import RoundReport

__all__ = [
    "ProcedureCosts",
    "QuantumCongestCharge",
    "grover_invocation_count",
    "lemma31_round_cost",
]

#: Constant in front of ``sqrt(log(1/δ)/ρ)``; amplitude amplification needs
#: roughly ``(π/4) / sqrt(ρ)`` iterations per attempt and ``log`` attempts are
#: folded into the square root (fixed-point search), so a small constant
#: suffices.  The same constant is used everywhere so measured round counts
#: are comparable across algorithms.
GROVER_CONSTANT = 1.0


def grover_invocation_count(rho: float, delta: float) -> int:
    """The number of Setup+Evaluation invocations charged by Lemma 3.1.

    Parameters
    ----------
    rho:
        Lower bound on the amplitude mass of good elements, in ``(0, 1]``.
    delta:
        Allowed failure probability, in ``(0, 1)``.

    Returns
    -------
    int
        ``ceil(GROVER_CONSTANT * sqrt(log(1/δ) / ρ))``, and at least 1.
    """
    if not 0 < rho <= 1:
        raise ValueError(f"rho must be in (0, 1], got {rho}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return max(1, math.ceil(GROVER_CONSTANT * math.sqrt(math.log(1 / delta) / rho)))


@dataclass
class ProcedureCosts:
    """Measured round costs of the three black boxes of Lemma 3.1.

    Attributes
    ----------
    initialization:
        Cost of the Initialization procedure (``T0``); paid once.
    setup:
        Cost of one Setup invocation (part of ``T``).
    evaluation:
        Cost of one Evaluation invocation (part of ``T``).
    label:
        Name used in reports.
    """

    initialization: RoundReport
    setup: RoundReport
    evaluation: RoundReport
    label: str = "procedure"

    @property
    def t0_rounds(self) -> int:
        """Congestion-adjusted rounds of Initialization."""
        return self.initialization.congested_rounds

    @property
    def t_rounds(self) -> int:
        """Congestion-adjusted rounds of one Setup + Evaluation invocation.

        Lemma 3.1 requires the unitaries *and their inverses*; running the
        inverse costs the same number of rounds, which is why the framework
        simply speaks of "T rounds" per invocation.  We charge the forward
        cost; the constant-factor difference is absorbed by
        :data:`GROVER_CONSTANT` being 1 rather than π/4.
        """
        return self.setup.congested_rounds + self.evaluation.congested_rounds


@dataclass
class QuantumCongestCharge:
    """A fully itemised quantum CONGEST round charge for one search.

    The total is ``t0 + invocations * t`` (congestion-adjusted rounds), plus
    any extra classical rounds the calling algorithm ran outside the search
    (e.g. broadcasting the final answer).
    """

    costs: ProcedureCosts
    rho: float
    delta: float
    invocations: int
    extra_classical: RoundReport = field(default_factory=RoundReport)

    @property
    def total_rounds(self) -> int:
        """Total congestion-adjusted rounds charged for the search."""
        return (
            self.costs.t0_rounds
            + self.invocations * self.costs.t_rounds
            + self.extra_classical.congested_rounds
        )

    def as_report(self) -> RoundReport:
        """Flatten into a :class:`RoundReport` (message/bit counts scale with invocations)."""
        setup, evaluation = self.costs.setup, self.costs.evaluation
        per_invocation_messages = setup.total_messages + evaluation.total_messages
        per_invocation_bits = setup.total_bits + evaluation.total_bits
        return RoundReport(
            rounds=self.costs.initialization.rounds
            + self.invocations * (setup.rounds + evaluation.rounds)
            + self.extra_classical.rounds,
            congested_rounds=self.total_rounds,
            total_messages=self.costs.initialization.total_messages
            + self.invocations * per_invocation_messages
            + self.extra_classical.total_messages,
            total_bits=self.costs.initialization.total_bits
            + self.invocations * per_invocation_bits
            + self.extra_classical.total_bits,
            max_message_bits=max(
                self.costs.initialization.max_message_bits,
                setup.max_message_bits,
                evaluation.max_message_bits,
                self.extra_classical.max_message_bits,
            ),
            protocol=f"quantum-search[{self.costs.label}]",
        )


def lemma31_round_cost(
    costs: ProcedureCosts, rho: float, delta: float
) -> QuantumCongestCharge:
    """Apply Lemma 3.1: package the charge for one distributed quantum search."""
    invocations = grover_invocation_count(rho, delta)
    return QuantumCongestCharge(
        costs=costs, rho=rho, delta=delta, invocations=invocations
    )
