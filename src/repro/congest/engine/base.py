"""Execution-engine registry for the CONGEST simulator.

Mirrors the kernel backend registry (:mod:`repro.kernels.backend`): engines
register themselves under a name, and :class:`~repro.congest.simulator.Simulator`
resolves one per run.  Four engines ship with the library:

* ``"sparse"`` -- the default event-driven scheduler: same semantics as the
  seed loop, but with an active-node set instead of full halted scans, pooled
  inboxes, enqueue-time message sizing and single-pass edge-charge accounting.
* ``"dense"`` -- a NumPy engine (registered only when NumPy is importable)
  that executes whole rounds as vectorized scatter/reduce over the network's
  CSR adjacency.  Only algorithms that declare a structured numeric message
  schema (:meth:`NodeAlgorithm.message_schema`) are eligible.
* ``"sharded"`` -- the shard-partitioned executor: the node set is split
  into ``REPRO_SHARDS`` contiguous CSR-aware shards whose deliver/compute
  phases run per shard (in-process by default, forked worker processes when
  ``REPRO_SHARD_WORKERS > 1``), exchanging cross-shard messages through
  per-round boundary buffers.  Runs arbitrary node programs and needs no
  NumPy.
* ``"symbolic"`` -- the closed-form executor: derives the whole
  :class:`RoundReport` analytically for schedule-determined schemas (tree
  primitives, broadcast replays, arrival-gated min-plus runs) instead of
  stepping rounds.  Pure Python, needs no NumPy, never auto-selected.
* ``"legacy"`` -- the seed scheduler loop, kept verbatim as the pinned
  reference the benchmarks and differential tests compare against.

Selection order (first match wins):

1. an explicit ``engine=`` argument on :meth:`Simulator.run`,
2. a :func:`force_engine` override (used by the differential tests and the
   engine benchmarks),
3. the ``REPRO_ENGINE`` environment variable (``sparse``, ``dense``,
   ``sharded``, ``symbolic``, ``legacy`` or ``auto``),
4. ``auto``: ``dense`` when the run is dense-eligible, otherwise ``sparse``
   (``sharded`` and ``symbolic`` are opt-in and never auto-selected).

A forced or environment-selected engine that cannot execute a particular run
(e.g. ``dense`` for an algorithm without a message schema) falls back to
``sparse``; only an *explicit* ``engine=`` argument raises instead, so tests
can assert eligibility.  Every engine must produce bit-identical
:class:`~repro.congest.engine.types.RoundReport` numbers and identical
outputs -- the paper's round-complexity claims depend on it.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Dict, Iterator, List, Optional

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.engine.types import SimulationResult
from repro.congest.network import Network

__all__ = [
    "ExecutionEngine",
    "register_engine",
    "available_engines",
    "get_engine",
    "resolve_engine",
    "force_engine",
    "ENGINE_ENV_VAR",
]

#: Environment variable consulted when no explicit engine is requested.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Engine every ineligible run falls back to (must support every run).
_FALLBACK = "sparse"

#: Bundled engines that may legitimately be absent (missing optional
#: dependency).  An *environment* preference (``REPRO_ENGINE``) for one of
#: these falls back to ``sparse`` instead of raising, so e.g. a blanket
#: ``REPRO_ENGINE=dense`` keeps working on a NumPy-free machine; a name
#: outside this set that is not registered is a typo and still raises.
#: Programmatic selection -- ``force_engine(...)`` or an explicit
#: ``engine=`` argument -- validates eagerly and raises for absent engines,
#: since code naming an engine should fail loudly, not silently degrade.
_OPTIONAL_ENGINES = frozenset({"dense"})

_REGISTRY: Dict[str, "ExecutionEngine"] = {}
_FORCED: Optional[str] = None


class ExecutionEngine:
    """Interface every CONGEST execution engine implements."""

    name: str = "abstract"

    def supports(
        self,
        network: Network,
        algorithm: NodeAlgorithm,
        initial_memory: Optional[Dict[int, Dict[str, Any]]] = None,
    ) -> bool:
        """Whether this engine can execute the given run faithfully."""
        return True

    def run(
        self,
        network: Network,
        algorithm: NodeAlgorithm,
        max_rounds: int,
        initial_memory: Optional[Dict[int, Dict[str, Any]]] = None,
        halt_on_quiescence: bool = False,
        observer: Optional[Any] = None,
    ) -> SimulationResult:
        """Execute ``algorithm`` on ``network`` until every node halts."""
        raise NotImplementedError


def register_engine(engine: ExecutionEngine) -> None:
    """Register ``engine`` under ``engine.name`` (overwriting any previous)."""
    _REGISTRY[engine.name] = engine


def available_engines() -> List[str]:
    """Names of all registered engines (always includes ``"sparse"``)."""
    return sorted(_REGISTRY)


def get_engine(name: str) -> ExecutionEngine:
    """Return the engine registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown execution engine {name!r}; available: {available_engines()}"
        ) from None


def resolve_engine(
    name: Optional[str],
    network: Network,
    algorithm: NodeAlgorithm,
    initial_memory: Optional[Dict[int, Dict[str, Any]]] = None,
) -> ExecutionEngine:
    """Select the engine for one run (explicit > forced > env > auto).

    ``name=None`` consults the override/environment; ``"auto"`` prefers the
    fastest eligible engine.  An explicitly named engine that cannot execute
    the run raises; a forced/environment preference silently falls back to
    the ``sparse`` engine, so a blanket ``REPRO_ENGINE=dense`` accelerates
    the eligible protocols without breaking the rest.
    """
    explicit = name is not None
    if name is None:
        name = _FORCED
    if name is None:
        name = os.environ.get(ENGINE_ENV_VAR, "auto").strip().lower() or "auto"
    if name == "auto":
        for preferred in ("dense",):
            engine = _REGISTRY.get(preferred)
            if engine is not None and engine.supports(
                network, algorithm, initial_memory
            ):
                return engine
        return _REGISTRY[_FALLBACK]
    if not explicit and name in _OPTIONAL_ENGINES and name not in _REGISTRY:
        return _REGISTRY[_FALLBACK]
    engine = get_engine(name)
    if engine.supports(network, algorithm, initial_memory):
        return engine
    if explicit:
        raise ValueError(
            f"engine {engine.name!r} cannot execute protocol "
            f"'{algorithm.name}' (no structured message schema, or an "
            f"unsupported run configuration)"
        )
    return _REGISTRY[_FALLBACK]


@contextlib.contextmanager
def force_engine(name: str) -> Iterator[ExecutionEngine]:
    """Context manager pinning the process-wide engine preference.

    The pinned engine is still subject to per-run eligibility: runs it cannot
    execute fall back to ``sparse`` (see :func:`resolve_engine`).
    """
    global _FORCED
    engine = get_engine(name)  # validate eagerly
    previous = _FORCED
    _FORCED = engine.name
    try:
        yield engine
    finally:
        _FORCED = previous
