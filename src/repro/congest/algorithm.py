"""The per-node program interface for the CONGEST simulator.

A distributed algorithm is written as a :class:`NodeAlgorithm` subclass.  The
simulator instantiates *one shared algorithm object* and calls it once per
node per round with that node's :class:`NodeContext`; all per-node state must
live in ``ctx.memory`` (a plain dict), never on the algorithm object.  This
mirrors how CONGEST algorithms are described in the literature -- a single
program text executed by every processor on its local state -- and keeps the
simulator honest: a node can only act on information that has reached it
through messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.congest.message import Message
from repro.congest.network import Network

__all__ = ["NodeContext", "NodeAlgorithm"]


@dataclass
class NodeContext:
    """Per-node execution context handed to the node program every round.

    Attributes
    ----------
    node:
        This node's identifier.
    network:
        The network (used only for *local* information: neighbors, incident
        edge weights, the global parameters ``n``, ``B`` and ``W`` which the
        model assumes are common knowledge).
    memory:
        The node's local memory; arbitrary per-node state.
    """

    node: int
    network: Network
    memory: Dict[str, Any] = field(default_factory=dict)
    _outbox: List[Message] = field(default_factory=list)
    _halted: bool = False

    # ------------------------------------------------------------------ #
    # Local knowledge
    # ------------------------------------------------------------------ #
    @property
    def neighbors(self) -> Tuple[int, ...]:
        """Identifiers of this node's neighbors."""
        return self.network.neighbors(self.node)

    @property
    def num_nodes(self) -> int:
        """The globally known network size ``n``."""
        return self.network.num_nodes

    def edge_weight(self, neighbor: int) -> int:
        """Weight of the edge to ``neighbor`` (locally known)."""
        return self.network.edge_weight(self.node, neighbor)

    @property
    def incident_weights(self) -> Dict[int, int]:
        """Mapping neighbor -> incident edge weight."""
        return self.network.incident_weights(self.node)

    # ------------------------------------------------------------------ #
    # Communication
    # ------------------------------------------------------------------ #
    def send(self, neighbor: int, payload: Any, tag: str = "") -> None:
        """Queue a message to ``neighbor`` for delivery next round."""
        if neighbor not in self.network.neighbors(self.node):
            raise ValueError(
                f"node {self.node} tried to send to non-neighbor {neighbor}"
            )
        self._outbox.append(
            Message(sender=self.node, receiver=neighbor, payload=payload, tag=tag)
        )

    def broadcast(self, payload: Any, tag: str = "") -> None:
        """Queue the same message to every neighbor."""
        for neighbor in self.neighbors:
            self.send(neighbor, payload, tag=tag)

    def halt(self) -> None:
        """Mark this node as finished; it will not be scheduled again."""
        self._halted = True

    @property
    def halted(self) -> bool:
        """Whether this node has halted."""
        return self._halted

    # Internal: the simulator drains the outbox each round.
    def _drain_outbox(self) -> List[Message]:
        outbox, self._outbox = self._outbox, []
        return outbox


class NodeAlgorithm:
    """Base class for CONGEST node programs.

    Subclasses override :meth:`initialize`, :meth:`receive` and
    :meth:`output`.  The simulator drives them as follows::

        for every node v:   initialize(ctx_v)            # before round 1
        for round r = 1, 2, ...:
            deliver messages queued in round r-1
            for every non-halted node v:  receive(ctx_v, r, inbox_v)
        until all nodes halted (or the round limit is hit)
        for every node v:   outputs[v] = output(ctx_v)
    """

    #: Human-readable protocol name used in round reports.
    name: str = "node-algorithm"

    def message_schema(self) -> Optional[Any]:
        """Declare a structured numeric message schema, if the protocol has one.

        Returning a :class:`repro.congest.engine.schema.MinPlusSchema`
        makes the protocol eligible for the vectorized ``dense`` execution
        engine, which runs whole rounds as scatter/reduce over the network's
        CSR adjacency instead of interpreting ``receive`` per node.  The
        schema must describe the protocol *exactly* -- the engines are
        required to produce bit-identical round reports -- so only declare
        one when every message the protocol sends fits the schema's shape.
        The default ``None`` keeps the protocol on the general engines.
        """
        return None

    def initialize(self, ctx: NodeContext) -> None:
        """Set up local state; may queue messages for round 1."""

    def receive(
        self, ctx: NodeContext, round_number: int, messages: List[Message]
    ) -> None:
        """Process the messages delivered this round; may queue messages and halt.

        ``messages`` is only valid for the duration of the call: the engines
        may pool and reuse the inbox list across rounds, so a node program
        that wants to keep messages around must copy them
        (``list(messages)``), never store the list itself.
        """
        raise NotImplementedError

    def output(self, ctx: NodeContext) -> Optional[Any]:
        """Return this node's final output (``None`` by default)."""
        return None
