"""E9 -- Theorems 4.2 / 4.8: the ``Ω̃(n^{2/3})`` lower bound, end to end.

The benchmark exercises every ingredient of the lower-bound chain on growing
gadget sizes and assembles the final round bound:

1. **Lemma 4.1** (measured): a CONGEST protocol runs on the gadget and the
   Server-model simulation counts the Alice/Bob communication, which must
   stay within the ``O(T · h · B)`` budget and far below the total traffic.
2. **Lemmas 4.5-4.7** (formula + E10's measured degrees): the Server-model
   complexity of ``F`` is ``Ω(sqrt(2^s · ℓ))``.
3. **Theorem 4.2 arithmetic**: rounds ``≥ Q^{sv}(F) / (h · B)``, which grows
   as ``n^{2/3} / log² n`` while the gadget's unweighted diameter stays
   ``Θ(log n)``.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import fit_power_law, render_table
from repro.congest import NodeAlgorithm
from repro.lower_bounds import (
    GadgetParameters,
    build_diameter_gadget,
    diameter_round_lower_bound,
    radius_round_lower_bound,
    simulate_congest_on_gadget,
)

SIMULATION_HEADERS = [
    "h",
    "gadget n",
    "protocol rounds T",
    "counted bits (measured)",
    "budget 4*T*h*B",
    "total traffic bits",
]

CERTIFICATE_HEADERS = [
    "problem",
    "h",
    "n",
    "D = O(log n)",
    "comm lower bound",
    "h*B per round",
    "round lower bound",
    "n^{2/3}/log^2 n",
]


class _Flood(NodeAlgorithm):
    name = "flood"

    def __init__(self, rounds):
        self._rounds = rounds

    def initialize(self, ctx):
        ctx.broadcast(("tick", 0), tag="f")

    def receive(self, ctx, round_number, messages):
        if round_number >= self._rounds:
            ctx.halt()
            return
        ctx.broadcast(("tick", round_number), tag="f")


def _simulation_rows():
    rows = []
    for height, rounds in ((4, 3), (4, 7), (6, 7), (6, 15)):
        parameters = GadgetParameters(
            height=height, num_blocks=4, ell=2, alpha=100, beta=200
        )
        x = (1,) * parameters.input_length
        y = (1,) * parameters.input_length
        gadget = build_diameter_gadget(x, y, parameters)
        transcript = simulate_congest_on_gadget(gadget, _Flood(rounds))
        rows.append(
            [
                height,
                gadget.num_nodes,
                transcript.rounds,
                transcript.counted_bits,
                transcript.lemma41_budget,
                transcript.result.report.total_bits,
            ]
        )
    return rows


def _certificate_rows():
    rows = []
    for problem, builder in (
        ("diameter", diameter_round_lower_bound),
        ("radius", radius_round_lower_bound),
    ):
        for height in (4, 6, 8, 10, 12, 14):
            certificate = builder(height)
            rows.append(
                [
                    problem,
                    height,
                    certificate.num_nodes,
                    round(certificate.unweighted_diameter_bound, 1),
                    round(certificate.communication_lower_bound, 1),
                    round(certificate.simulation_cost_per_round, 1),
                    round(certificate.round_lower_bound, 2),
                    round(certificate.theoretical_formula, 2),
                ]
            )
    return rows


def _sweep():
    return _simulation_rows(), _certificate_rows()


def test_theorem42_lower_bound_chain(benchmark, record_artifact):
    simulation_rows, certificate_rows = run_once(benchmark, _sweep)

    simulation_table = render_table(
        SIMULATION_HEADERS,
        simulation_rows,
        title="Lemma 4.1: measured Server-model cost of CONGEST protocols on the gadget",
    )
    certificate_table = render_table(
        CERTIFICATE_HEADERS,
        certificate_rows,
        title="Theorems 4.2 / 4.8: assembled round lower bounds",
    )
    record_artifact(
        "theorem42_lower_bound", simulation_table + "\n\n" + certificate_table
    )

    # Lemma 4.1: counted communication within budget and a small fraction of
    # the total traffic.
    for row in simulation_rows:
        assert row[3] <= row[4]
        assert row[3] < row[5] / 5

    # The assembled bound scales like n^{2/3} up to polylogs: fit the
    # diameter-certificate rows against n.
    diameter_rows = [row for row in certificate_rows if row[0] == "diameter"]
    ns = [row[2] for row in diameter_rows]
    bounds = [row[6] for row in diameter_rows]
    fit = fit_power_law(ns, bounds)
    # The pure formula is n^{2/3} / log^2 n; at these sizes the log^2 n drag
    # pulls the apparent exponent down towards ~0.5, so accept [0.45, 0.8].
    assert 0.45 <= fit.exponent <= 0.8
    assert fit.r_squared > 0.95

    # The gadget's unweighted diameter stays logarithmic while the bound grows
    # polynomially.
    for row in certificate_rows:
        assert row[3] <= 40
