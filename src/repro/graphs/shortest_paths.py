"""Exact sequential shortest-path algorithms.

These are the ground-truth oracles against which every distributed and
quantum routine in the library is checked.  The module provides:

* :func:`dijkstra` -- single-source distances on positively weighted graphs.
* :func:`bellman_ford` -- single-source distances via relaxation, also usable
  as a hop-bounded variant.
* :func:`bounded_hop_distances` -- the ``l``-hop distance
  ``d^l_{G,w}(u, v)`` from Section 3.1 of the paper: the least length over all
  paths using at most ``l`` edges.
* :func:`bounded_distance_sssp` -- distances up to a length threshold ``L``,
  mirroring Algorithm 2 (Bounded-Distance SSSP) of the paper's Appendix A.
* :func:`all_pairs_distances` -- exact APSP in one batched kernel pass.
* :func:`shortest_path` -- an explicit shortest path (node list).

The public functions delegate to the CSR kernel layer
(:mod:`repro.kernels`), which snapshots the graph into array form once and
dispatches to the fastest registered backend; signatures and return
conventions are unchanged.  The original dict-based implementations are kept
as ``*_reference`` twins -- they remain the independent oracles the kernel
property tests cross-check against, and they document the textbook
algorithms.

All functions treat unreachable nodes as being at distance
:data:`math.inf` and never invent edges.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "dijkstra",
    "bellman_ford",
    "bounded_hop_distances",
    "bounded_distance_sssp",
    "all_pairs_distances",
    "shortest_path",
    "dijkstra_reference",
    "bellman_ford_reference",
    "bounded_hop_distances_reference",
    "all_pairs_distances_reference",
    "INFINITY",
]

#: Distance value used for unreachable nodes.
INFINITY = math.inf


def dijkstra(graph: WeightedGraph, source: int) -> Dict[int, float]:
    """Compute exact single-source shortest distances from ``source``.

    Parameters
    ----------
    graph:
        The weighted graph; weights must be positive (guaranteed by
        :class:`WeightedGraph`).
    source:
        The source node; must be in the graph.

    Returns
    -------
    dict
        Mapping from every node to its distance from ``source``
        (``math.inf`` when unreachable).
    """
    from repro.kernels import dijkstra_csr

    return dijkstra_csr(graph, source)


def dijkstra_reference(graph: WeightedGraph, source: int) -> Dict[int, float]:
    """Textbook binary-heap Dijkstra on the adjacency dicts.

    Kept as the independent oracle the kernel property tests cross-check
    :func:`dijkstra` (and every backend) against.
    """
    if source not in graph:
        raise KeyError(f"source node {source} is not in the graph")
    distances: Dict[int, float] = {node: INFINITY for node in graph.nodes}
    distances[source] = 0
    heap: List[Tuple[float, int]] = [(0, source)]
    visited: set = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor, weight in graph.incident_edges(node):
            candidate = dist + weight
            if candidate < distances[neighbor]:
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return distances


def bellman_ford(
    graph: WeightedGraph, source: int, max_hops: Optional[int] = None
) -> Dict[int, float]:
    """Single-source distances by iterated relaxation.

    With ``max_hops=None`` this computes exact distances (equivalent to
    :func:`dijkstra` on positive weights).  With ``max_hops=l`` it computes
    the ``l``-hop distance ``d^l_{G,w}(source, v)``: the least length over
    paths with at most ``l`` edges.

    Returns
    -------
    dict
        Mapping node -> distance (``math.inf`` if unreachable within the hop
        budget).
    """
    from repro.kernels import batched_bellman_ford

    rounds = graph.num_nodes - 1 if max_hops is None else max_hops
    return batched_bellman_ford(graph, [source], rounds)[source]


def bellman_ford_reference(
    graph: WeightedGraph, source: int, max_hops: Optional[int] = None
) -> Dict[int, float]:
    """Frontier-based relaxation on the adjacency dicts (kernel oracle)."""
    if source not in graph:
        raise KeyError(f"source node {source} is not in the graph")
    rounds = graph.num_nodes - 1 if max_hops is None else max_hops
    distances: Dict[int, float] = {node: INFINITY for node in graph.nodes}
    distances[source] = 0
    # Relax edges `rounds` times; track only nodes updated in the previous
    # iteration to keep the loop close to the distributed behaviour.
    frontier = {source}
    for _ in range(rounds):
        if not frontier:
            break
        next_frontier: set = set()
        updates: Dict[int, float] = {}
        for node in frontier:
            base = distances[node]
            for neighbor, weight in graph.incident_edges(node):
                candidate = base + weight
                best = updates.get(neighbor, distances[neighbor])
                if candidate < best:
                    updates[neighbor] = candidate
        for node, value in updates.items():
            if value < distances[node]:
                distances[node] = value
                next_frontier.add(node)
        frontier = next_frontier
    return distances


def bounded_hop_distances(
    graph: WeightedGraph, source: int, max_hops: int
) -> Dict[int, float]:
    """Exact ``l``-hop distances ``d^l_{G,w}(source, .)``.

    The ``l``-hop distance between ``u`` and ``v`` is the least length over
    all paths between them containing at most ``l`` edges (Section 3.1).
    It equals the true distance whenever the shortest path uses at most ``l``
    hops.
    """
    from repro.kernels import batched_bellman_ford

    return batched_bellman_ford(graph, [source], max_hops)[source]


def bounded_hop_distances_reference(
    graph: WeightedGraph, source: int, max_hops: int
) -> Dict[int, float]:
    """Explicit dynamic program over the hop count (kernel oracle).

    Computes the same quantity as :func:`bounded_hop_distances` through a
    structurally different recurrence, which the property tests cross-check
    against both the kernel layer and the relaxation variant.
    """
    if max_hops < 0:
        raise ValueError(f"max_hops must be non-negative, got {max_hops}")
    if source not in graph:
        raise KeyError(f"source node {source} is not in the graph")
    best: Dict[int, float] = {node: INFINITY for node in graph.nodes}
    best[source] = 0
    current = dict(best)
    for _ in range(max_hops):
        nxt = dict(current)
        changed = False
        for node in graph.nodes:
            if math.isinf(current[node]):
                continue
            base = current[node]
            for neighbor, weight in graph.incident_edges(node):
                candidate = base + weight
                if candidate < nxt[neighbor]:
                    nxt[neighbor] = candidate
                    changed = True
        current = nxt
        for node, value in current.items():
            if value < best[node]:
                best[node] = value
        if not changed:
            break
    return best


def bounded_distance_sssp(
    graph: WeightedGraph, source: int, max_distance: float
) -> Dict[int, float]:
    """Distances from ``source`` restricted to nodes within ``max_distance``.

    Mirrors Algorithm 2 of the paper: a node learns its distance if and only
    if that distance is at most ``L = max_distance``.  Nodes farther than
    ``L`` are reported at ``math.inf``.
    """
    distances = dijkstra(graph, source)
    return {
        node: (
            INFINITY
            if math.isinf(dist) or dist > max_distance
            else dist
        )
        for node, dist in distances.items()
    }


def all_pairs_distances(graph: WeightedGraph) -> Dict[int, Dict[int, float]]:
    """Exact all-pairs shortest-path distances via the batched CSR kernel."""
    from repro.kernels import all_pairs_distances_csr

    return all_pairs_distances_csr(graph)


def all_pairs_distances_reference(
    graph: WeightedGraph,
) -> Dict[int, Dict[int, float]]:
    """Exact APSP by repeated dict-based Dijkstra (the seed implementation)."""
    return {node: dijkstra_reference(graph, node) for node in graph.nodes}


def shortest_path(
    graph: WeightedGraph, source: int, target: int
) -> Tuple[float, Sequence[int]]:
    """Return ``(distance, path)`` for one shortest path from source to target.

    The path is returned as a list of nodes starting at ``source`` and ending
    at ``target``.  If ``target`` is unreachable the distance is
    ``math.inf`` and the path is empty.
    """
    if source not in graph:
        raise KeyError(f"source node {source} is not in the graph")
    if target not in graph:
        raise KeyError(f"target node {target} is not in the graph")
    distances: Dict[int, float] = {node: INFINITY for node in graph.nodes}
    parents: Dict[int, Optional[int]] = {source: None}
    distances[source] = 0
    heap: List[Tuple[float, int]] = [(0, source)]
    visited: set = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        for neighbor, weight in graph.incident_edges(node):
            candidate = dist + weight
            if candidate < distances[neighbor]:
                distances[neighbor] = candidate
                parents[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    if math.isinf(distances[target]):
        return INFINITY, []
    path: List[int] = []
    node: Optional[int] = target
    while node is not None:
        path.append(node)
        node = parents.get(node)
    path.reverse()
    return distances[target], path
