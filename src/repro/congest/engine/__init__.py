"""Pluggable execution engines for the CONGEST simulator.

See :mod:`repro.congest.engine.base` for the registry contract and
:mod:`repro.congest.engine.schema` for the message-schema hook that makes a
protocol eligible for the schema-driven engines (the vectorized ``dense``
engine and the closed-form ``symbolic`` engine).  Importing this package
registers the bundled engines (``sparse``, ``legacy``, ``sharded``,
``symbolic``, and -- when NumPy is importable -- ``dense``).
"""

from repro.congest.engine.types import (
    RoundLimitExceeded,
    RoundReport,
    ShardRoundCharges,
    SimulationResult,
)
from repro.congest.engine.base import (
    ENGINE_ENV_VAR,
    ExecutionEngine,
    available_engines,
    force_engine,
    get_engine,
    register_engine,
    resolve_engine,
)
from repro.congest.engine.schema import (
    BroadcastReplaySchema,
    MinPlusSchema,
    TreeSchema,
)

# Engine registration happens at import time, mirroring the kernel backends.
from repro.congest.engine import sparse as _sparse  # noqa: F401  (registers)
from repro.congest.engine import legacy as _legacy  # noqa: F401  (registers)
from repro.congest.engine import sharded as _sharded  # noqa: F401  (registers)
from repro.congest.engine import symbolic as _symbolic  # noqa: F401  (registers)

try:  # The dense engine needs NumPy; everything else must work without it.
    from repro.congest.engine import dense as _dense  # noqa: F401  (registers)
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    pass

__all__ = [
    "RoundLimitExceeded",
    "RoundReport",
    "ShardRoundCharges",
    "SimulationResult",
    "ENGINE_ENV_VAR",
    "ExecutionEngine",
    "available_engines",
    "force_engine",
    "get_engine",
    "register_engine",
    "resolve_engine",
    "BroadcastReplaySchema",
    "MinPlusSchema",
    "TreeSchema",
]
