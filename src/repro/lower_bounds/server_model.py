"""The Server model and the Lemma 4.1 simulation of CONGEST algorithms.

The *Server model* (Elkin-Klauck-Nanongkai-Pandurangan) is two-party
communication with a referee: Alice holds ``x``, Bob holds ``y``, a server
holds nothing; messages *from* the server are free and only the bits Alice
and Bob send are counted.  Lemma 4.1 shows that any ``T``-round CONGEST
algorithm (``T < 2^h / 2``) on the gadget graph of Figure 1 can be simulated
in the Server model with only ``O(T · h · B)`` counted bits: the server
initially simulates all of ``V_S`` and hands nodes over to Alice/Bob as the
light cone of their inputs spreads inward along the paths; the only counted
messages are the ``O(h)`` per round that cross from an Alice/Bob-owned tree
node to a server-owned one.

:func:`simulate_congest_on_gadget` executes an actual CONGEST protocol on the
gadget with the simulator and *measures* the counted communication by
replaying the ownership schedule of Lemma 4.1 -- so the benchmarks can check
the ``O(T · h · B)`` overhead empirically rather than taking it on faith.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.congest.algorithm import NodeAlgorithm
from repro.congest.message import Message
from repro.congest.network import CongestConfig, Network
from repro.congest.simulator import SimulationResult, Simulator
from repro.lower_bounds.gadgets import DiameterGadget

__all__ = [
    "Owner",
    "OwnershipSchedule",
    "ServerModelTranscript",
    "simulate_congest_on_gadget",
    "server_model_complexity_lower_bound",
]


class Owner:
    """The three parties of the Server model."""

    ALICE = "alice"
    BOB = "bob"
    SERVER = "server"


@dataclass
class OwnershipSchedule:
    """The Lemma 4.1 ownership schedule on a gadget graph.

    Node ownership at the end of round ``r``:

    * ``V_A`` always belongs to Alice, ``V_B`` to Bob;
    * path node ``p_{i,j}`` (positions zero-based, path length ``2^h``)
      belongs to the server while ``r ≤ j ≤ 2^h - 1 - r``, to Alice for
      ``j < r`` and to Bob for ``j > 2^h - 1 - r``;
    * tree node ``t_{i,j}`` of depth ``i`` belongs to the server while its
      subtree still covers a server-owned column, i.e. for
      ``ceil((1+r)/2^{h-i}) ≤ j+1 ≤ ceil((2^h - r)/2^{h-i})`` (one-based
      ``j+1``), to Alice left of that window and to Bob right of it.
    """

    gadget: DiameterGadget

    def owner(self, node: int, round_number: int) -> str:
        """The party simulating ``node`` at the end of ``round_number``."""
        gadget = self.gadget
        if node in self._va_set:
            return Owner.ALICE
        if node in self._vb_set:
            return Owner.BOB
        r = max(0, round_number)
        path_length = gadget.parameters.path_length
        position = self._path_position.get(node)
        if position is not None:
            # Within the Lemma 4.1 regime (r < 2^h / 2) the two light cones
            # never meet; beyond it we clamp each side to its own half so the
            # hand-over stays monotone and well-defined.
            alice_cut = min(r, (path_length + 1) // 2)
            bob_cut = path_length - 1 - min(r, path_length // 2)
            if position < alice_cut:
                return Owner.ALICE
            if position > bob_cut:
                return Owner.BOB
            return Owner.SERVER
        depth, index = self._tree_position[node]
        height = gadget.parameters.height
        stride = 2 ** (height - depth)
        low = math.ceil((1 + r) / stride)
        high = math.ceil((path_length - r) / stride)
        one_based = index + 1
        if one_based < low:
            return Owner.ALICE
        if one_based > high:
            return Owner.BOB
        return Owner.SERVER

    def __post_init__(self) -> None:
        gadget = self.gadget
        self._va_set = set(gadget.node_sets["VA"])
        self._vb_set = set(gadget.node_sets["VB"])
        self._path_position: Dict[int, int] = {
            node: position
            for (path, position), node in gadget.base.path_nodes.items()
        }
        self._tree_position: Dict[int, Tuple[int, int]] = {
            node: (depth, index)
            for (depth, index), node in gadget.base.tree_nodes.items()
        }


@dataclass
class ServerModelTranscript:
    """Measured communication of one Lemma 4.1 simulation.

    Attributes
    ----------
    rounds:
        Number of CONGEST rounds the simulated algorithm ran.
    alice_bits / bob_bits:
        Bits Alice / Bob sent to the server (the *counted* communication).
    alice_messages / bob_messages:
        Message counts behind those bits.
    free_bits:
        Bits sent by the server (not counted in the Server model) -- reported
        for context only.
    bandwidth_bits:
        The CONGEST bandwidth ``B`` used by the run.
    tree_height:
        The gadget's ``h``; Lemma 4.1 predicts ``counted ≤ O(rounds · h · B)``.
    simulation_valid:
        ``False`` when the algorithm ran ``T ≥ 2^h / 2`` rounds, outside the
        regime where Lemma 4.1 applies.
    result:
        The underlying CONGEST simulation result.
    """

    rounds: int
    alice_bits: int
    bob_bits: int
    alice_messages: int
    bob_messages: int
    free_bits: int
    bandwidth_bits: int
    tree_height: int
    simulation_valid: bool
    result: Optional[SimulationResult] = None

    @property
    def counted_bits(self) -> int:
        """Total counted communication (Alice plus Bob)."""
        return self.alice_bits + self.bob_bits

    @property
    def lemma41_budget(self) -> int:
        """The ``O(T · h · B)`` budget the counted bits are compared against.

        The constant is 4: each round at most ``2h`` tree nodes change hands
        in each direction and each counted message carries at most ``B`` bits
        plus tag overhead.
        """
        return 4 * max(1, self.rounds) * max(1, self.tree_height) * self.bandwidth_bits


def simulate_congest_on_gadget(
    gadget: DiameterGadget,
    algorithm: NodeAlgorithm,
    config: Optional[CongestConfig] = None,
    halt_on_quiescence: bool = False,
    max_rounds: Optional[int] = None,
) -> ServerModelTranscript:
    """Run a CONGEST protocol on the gadget and measure its Server-model cost.

    The protocol runs unmodified on the CONGEST simulator; an observer replays
    the Lemma 4.1 ownership schedule and counts, for every delivered message,
    whether it crossed from an Alice/Bob-owned node into a server-owned node
    (counted) or was sent by the server (free).
    """
    network = Network(gadget.graph, config or CongestConfig())
    schedule = OwnershipSchedule(gadget)
    word_bits = network.word_bits

    counters = {
        "alice_bits": 0,
        "bob_bits": 0,
        "alice_messages": 0,
        "bob_messages": 0,
        "free_bits": 0,
    }

    def observer(round_number: int, delivered: List[Message]) -> None:
        for message in delivered:
            sender_owner = schedule.owner(message.sender, round_number - 1)
            receiver_owner = schedule.owner(message.receiver, round_number)
            bits = message.size_bits(word_bits=word_bits)
            if sender_owner == Owner.SERVER:
                counters["free_bits"] += bits
                continue
            if receiver_owner != Owner.SERVER:
                # Alice->Alice or Bob->Bob traffic is simulated locally by the
                # owning party; Alice->Bob edges do not exist in the gadget.
                continue
            if sender_owner == Owner.ALICE:
                counters["alice_bits"] += bits
                counters["alice_messages"] += 1
            else:
                counters["bob_bits"] += bits
                counters["bob_messages"] += 1

    simulator = Simulator(network, max_rounds=max_rounds)
    result = simulator.run(
        algorithm, halt_on_quiescence=halt_on_quiescence, observer=observer
    )
    rounds = result.report.rounds
    valid = rounds < (2**gadget.parameters.height) / 2
    return ServerModelTranscript(
        rounds=rounds,
        alice_bits=counters["alice_bits"],
        bob_bits=counters["bob_bits"],
        alice_messages=counters["alice_messages"],
        bob_messages=counters["bob_messages"],
        free_bits=counters["free_bits"],
        bandwidth_bits=network.bandwidth_bits,
        tree_height=gadget.parameters.height,
        simulation_valid=valid,
        result=result,
    )


def server_model_complexity_lower_bound(
    num_blocks: int, ell: int, constant: float = 0.25
) -> float:
    """The Lemma 4.7 / 4.10 bound ``Q^{sv}_{1/12}(F) = Ω(sqrt(2^s · ℓ))``.

    Both ``F`` and ``F'`` factor as a read-once formula on ``2^s·ℓ/4``
    variables composed with ``GDT``; Lemma 4.5 plus Lemma 4.6 then give the
    square-root bound.  ``constant`` is the conservative constant the
    benchmarks use when comparing against measured approximate degrees.
    """
    if num_blocks < 1 or ell < 1:
        raise ValueError("num_blocks and ell must be positive")
    return constant * math.sqrt(num_blocks * ell)
