"""Rule base class and registry for the repo linter.

Rules are *classes*: the engine instantiates each selected rule once per
module, hands it the module's :class:`~repro.lint.engine.ModuleContext`,
and dispatches AST nodes to it by node type (``node_types``).  A rule can
keep per-module state across :meth:`Rule.visit` calls and flush
module-level conclusions from :meth:`Rule.finish` (see ``REP105``, which
must see every class definition *and* every ``register_*`` call before it
can conclude anything).

Registration is by decorator::

    @register_rule
    class MyRule(Rule):
        code = "REP1xx"
        ...

and the engine selects rules by code via :func:`resolve_rules`
(``--select`` / ``--ignore`` on the CLI).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.lint.findings import Finding

__all__ = ["Rule", "register_rule", "all_rules", "resolve_rules", "UnknownRuleCode"]


class Rule:
    """Base class for one lint rule.

    Class attributes
    ----------------
    code:
        Unique ``REPxxx`` code used in reports, suppressions and
        ``--select`` / ``--ignore``.
    name:
        Short kebab-case slug shown next to the code in reports.
    summary:
        One-line description for ``--list-rules`` and the README table.
    scope:
        ``"all"`` applies everywhere; ``"src"`` restricts the rule to
        files under a ``src`` directory (library code) -- test code is
        allowed to do things library code must not (import NumPy
        unconditionally, read ``REPRO_*`` knobs, draw global randomness).
    node_types:
        AST node classes the engine dispatches to :meth:`visit`.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    scope: str = "all"
    node_types: Tuple[type, ...] = ()

    def __init__(self, ctx: "ModuleContext") -> None:  # noqa: F821
        self.ctx = ctx

    # ------------------------------------------------------------------ #
    def visit(self, node: ast.AST) -> Iterator[Finding]:
        """Inspect one dispatched node; yield findings."""
        return iter(())

    def finish(self) -> Iterator[Finding]:
        """Called once after the module walk; yield module-level findings."""
        return iter(())

    # ------------------------------------------------------------------ #
    def finding(self, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` in the current module."""
        return self.finding_at(
            getattr(node, "lineno", 1), getattr(node, "col_offset", 0), message
        )

    def finding_at(self, line: int, col: int, message: str) -> Finding:
        return Finding(
            path=self.ctx.display_path,
            line=line,
            col=col,
            code=self.code,
            rule=self.name,
            message=message,
        )


class UnknownRuleCode(ValueError):
    """Raised when ``--select`` / ``--ignore`` names a code nobody registered."""


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    code = rule_cls.code
    if not code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def resolve_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Type[Rule]]:
    """The rule classes to run, honouring ``--select`` then ``--ignore``.

    Raises :class:`UnknownRuleCode` for a code nobody registered, so a typo
    in CI configuration fails loudly instead of silently checking nothing.
    """

    def _check(codes: Iterable[str]) -> List[str]:
        cleaned = [code.strip() for code in codes if code.strip()]
        for code in cleaned:
            if code not in _REGISTRY:
                known = ", ".join(sorted(_REGISTRY))
                raise UnknownRuleCode(f"unknown rule code {code!r} (known: {known})")
        return cleaned

    chosen = all_rules()
    if select is not None:
        wanted = set(_check(select))
        chosen = [rule for rule in chosen if rule.code in wanted]
    if ignore is not None:
        dropped = set(_check(ignore))
        chosen = [rule for rule in chosen if rule.code not in dropped]
    return chosen
