"""Graph generators for the test-suite and the benchmark sweeps.

The round-complexity bounds in the paper depend on two independent knobs:

* ``n``  -- the number of nodes, and
* ``D``  -- the *unweighted* diameter of the network topology,

so the benchmark harness needs graph families whose diameter can be dialled
from ``Theta(log n)`` up to ``Theta(n)`` while ``n`` is held fixed.  The
generators below cover that range:

* :func:`low_diameter_expander` and :func:`erdos_renyi_graph` give
  ``D = O(log n)``.
* :func:`path_of_cliques` interpolates: ``k`` cliques strung on a path give
  ``D = Theta(k)`` for any ``k``.
* :func:`path_graph`, :func:`cycle_graph` and :func:`caterpillar_graph`
  give ``D = Theta(n)``.

Every generator that uses randomness takes an explicit ``seed`` and is fully
deterministic given it.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple

from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "balanced_binary_tree",
    "erdos_renyi_graph",
    "random_geometric_graph",
    "barbell_graph",
    "path_of_cliques",
    "random_weighted_graph",
    "random_tree",
    "caterpillar_graph",
    "low_diameter_expander",
    "yao_spanner_graph",
    "assign_random_weights",
]


def _weight_picker(
    rng: Optional[random.Random], max_weight: int
) -> "callable":
    """Return a function producing edge weights in ``[1, max_weight]``."""
    if max_weight < 1:
        raise ValueError(f"max_weight must be at least 1, got {max_weight}")
    if rng is None or max_weight == 1:
        return lambda: 1
    return lambda: rng.randint(1, max_weight)


def assign_random_weights(
    graph: WeightedGraph, max_weight: int, seed: int = 0
) -> WeightedGraph:
    """Return a copy of ``graph`` with i.i.d. uniform weights in ``[1, max_weight]``."""
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    return graph.reweighted(lambda u, v, w: pick())


def path_graph(
    num_nodes: int, max_weight: int = 1, seed: int = 0
) -> WeightedGraph:
    """A path on ``num_nodes`` nodes; unweighted diameter ``num_nodes - 1``."""
    if num_nodes < 1:
        raise ValueError("path_graph needs at least one node")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    graph = WeightedGraph(nodes=range(num_nodes))
    for i in range(num_nodes - 1):
        graph.add_edge(i, i + 1, pick())
    return graph


def cycle_graph(
    num_nodes: int, max_weight: int = 1, seed: int = 0
) -> WeightedGraph:
    """A cycle on ``num_nodes`` nodes; unweighted diameter ``floor(n/2)``."""
    if num_nodes < 3:
        raise ValueError("cycle_graph needs at least three nodes")
    graph = path_graph(num_nodes, max_weight=max_weight, seed=seed)
    rng = random.Random(seed + 1)
    pick = _weight_picker(rng, max_weight)
    graph.add_edge(num_nodes - 1, 0, pick())
    return graph


def complete_graph(
    num_nodes: int, max_weight: int = 1, seed: int = 0
) -> WeightedGraph:
    """The complete graph ``K_n``; unweighted diameter 1."""
    if num_nodes < 1:
        raise ValueError("complete_graph needs at least one node")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    graph = WeightedGraph(nodes=range(num_nodes))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            graph.add_edge(u, v, pick())
    return graph


def star_graph(num_leaves: int, max_weight: int = 1, seed: int = 0) -> WeightedGraph:
    """A star with one hub (node 0) and ``num_leaves`` leaves; diameter 2."""
    if num_leaves < 1:
        raise ValueError("star_graph needs at least one leaf")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    graph = WeightedGraph(nodes=range(num_leaves + 1))
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf, pick())
    return graph


def grid_graph(
    rows: int, cols: int, max_weight: int = 1, seed: int = 0
) -> WeightedGraph:
    """A ``rows x cols`` grid; unweighted diameter ``rows + cols - 2``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid_graph needs positive dimensions")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    graph = WeightedGraph(nodes=range(rows * cols))

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(node_id(r, c), node_id(r, c + 1), pick())
            if r + 1 < rows:
                graph.add_edge(node_id(r, c), node_id(r + 1, c), pick())
    return graph


def balanced_binary_tree(
    height: int, max_weight: int = 1, seed: int = 0
) -> WeightedGraph:
    """A complete binary tree of the given height; diameter ``2 * height``."""
    if height < 0:
        raise ValueError("height must be non-negative")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    num_nodes = 2 ** (height + 1) - 1
    graph = WeightedGraph(nodes=range(num_nodes))
    for node in range(1, num_nodes):
        parent = (node - 1) // 2
        graph.add_edge(parent, node, pick())
    return graph


def random_tree(num_nodes: int, max_weight: int = 1, seed: int = 0) -> WeightedGraph:
    """A uniformly random labelled tree built from a random Prüfer-like attachment."""
    if num_nodes < 1:
        raise ValueError("random_tree needs at least one node")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    graph = WeightedGraph(nodes=range(num_nodes))
    for node in range(1, num_nodes):
        parent = rng.randrange(node)
        graph.add_edge(parent, node, pick())
    return graph


def caterpillar_graph(
    spine_length: int, legs_per_node: int, max_weight: int = 1, seed: int = 0
) -> WeightedGraph:
    """A caterpillar: a spine path with ``legs_per_node`` leaves on each spine node.

    The unweighted diameter is ``spine_length + 1`` (leaf to leaf across the
    spine), so the family gives a linear-diameter topology whose node count
    can be scaled independently via the leg count.
    """
    if spine_length < 1:
        raise ValueError("spine_length must be at least 1")
    if legs_per_node < 0:
        raise ValueError("legs_per_node must be non-negative")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    graph = WeightedGraph()
    for i in range(spine_length):
        graph.add_node(i)
        if i > 0:
            graph.add_edge(i - 1, i, pick())
    next_id = spine_length
    for i in range(spine_length):
        for _ in range(legs_per_node):
            graph.add_edge(i, next_id, pick())
            next_id += 1
    return graph


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    max_weight: int = 1,
    seed: int = 0,
    ensure_connected: bool = True,
) -> WeightedGraph:
    """An Erdős–Rényi ``G(n, p)`` graph with optional connectivity repair.

    When ``ensure_connected`` is true, a spanning path over a random node
    permutation is added so the graph is always connected; for
    ``p >= (1 + eps) ln n / n`` this changes the structure negligibly and
    keeps the diameter ``O(log n)`` in the dense regime.
    """
    if num_nodes < 1:
        raise ValueError("erdos_renyi_graph needs at least one node")
    if not 0 <= edge_probability <= 1:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    graph = WeightedGraph(nodes=range(num_nodes))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(u, v, pick())
    if ensure_connected and num_nodes > 1:
        order = list(range(num_nodes))
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            if not graph.has_edge(a, b):
                graph.add_edge(a, b, pick())
    return graph


def random_geometric_graph(
    num_nodes: int,
    connection_radius: float,
    max_weight: int = 1,
    seed: int = 0,
    ensure_connected: bool = True,
) -> WeightedGraph:
    """A random geometric graph on the unit square.

    Nodes are placed uniformly at random; nodes within ``connection_radius``
    are connected.  This is a standard model of sensor/wireless networks used
    in the example applications.
    """
    if num_nodes < 1:
        raise ValueError("random_geometric_graph needs at least one node")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    positions = [(rng.random(), rng.random()) for _ in range(num_nodes)]
    graph = WeightedGraph(nodes=range(num_nodes))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            if math.hypot(dx, dy) <= connection_radius:
                graph.add_edge(u, v, pick())
    if ensure_connected and num_nodes > 1:
        # Connect components greedily by nearest pairs so the topology stays
        # geometric in spirit.
        components = graph.connected_components()
        while len(components) > 1:
            base = components[0]
            best: Optional[Tuple[float, int, int]] = None
            for other in components[1:]:
                for u in base:
                    for v in other:
                        dx = positions[u][0] - positions[v][0]
                        dy = positions[u][1] - positions[v][1]
                        dist = math.hypot(dx, dy)
                        if best is None or dist < best[0]:
                            best = (dist, u, v)
            assert best is not None
            graph.add_edge(best[1], best[2], pick())
            components = graph.connected_components()
    return graph


def barbell_graph(
    clique_size: int, bridge_length: int, max_weight: int = 1, seed: int = 0
) -> WeightedGraph:
    """Two cliques of ``clique_size`` nodes joined by a path of ``bridge_length`` edges."""
    if clique_size < 1:
        raise ValueError("clique_size must be at least 1")
    if bridge_length < 1:
        raise ValueError("bridge_length must be at least 1")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    graph = WeightedGraph()
    left = list(range(clique_size))
    right = list(range(clique_size, 2 * clique_size))
    for group in (left, right):
        for i, u in enumerate(group):
            graph.add_node(u)
            for v in group[i + 1 :]:
                graph.add_edge(u, v, pick())
    bridge = list(range(2 * clique_size, 2 * clique_size + bridge_length - 1))
    chain = [left[0]] + bridge + [right[0]]
    for a, b in zip(chain, chain[1:]):
        graph.add_edge(a, b, pick())
    return graph


def path_of_cliques(
    num_cliques: int, clique_size: int, max_weight: int = 1, seed: int = 0
) -> WeightedGraph:
    """``num_cliques`` cliques strung along a path.

    The unweighted diameter is ``Theta(num_cliques)`` while the node count is
    ``num_cliques * clique_size``; this family lets the benchmarks sweep the
    diameter independently of ``n``, which is exactly what the
    ``min{n^{9/10} D^{3/10}, n}`` crossover analysis needs.
    """
    if num_cliques < 1:
        raise ValueError("num_cliques must be at least 1")
    if clique_size < 1:
        raise ValueError("clique_size must be at least 1")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    graph = WeightedGraph()
    previous_gate: Optional[int] = None
    for clique_index in range(num_cliques):
        base = clique_index * clique_size
        members = list(range(base, base + clique_size))
        for i, u in enumerate(members):
            graph.add_node(u)
            for v in members[i + 1 :]:
                graph.add_edge(u, v, pick())
        if previous_gate is not None:
            graph.add_edge(previous_gate, members[0], pick())
        previous_gate = members[-1]
    return graph


def low_diameter_expander(
    num_nodes: int, degree: int = 6, max_weight: int = 1, seed: int = 0
) -> WeightedGraph:
    """A random near-regular graph with ``O(log n)`` diameter.

    Built as the union of ``degree / 2`` random perfect matchings over a
    Hamiltonian cycle; the cycle guarantees connectivity, the matchings give
    expansion.  Used for the "small D" end of the benchmark sweeps.
    """
    if num_nodes < 4:
        raise ValueError("low_diameter_expander needs at least four nodes")
    if degree < 3:
        raise ValueError("degree must be at least 3")
    rng = random.Random(seed)
    pick = _weight_picker(rng, max_weight)
    graph = cycle_graph(num_nodes, max_weight=1, seed=seed)
    graph = graph.reweighted(lambda u, v, w: pick())
    num_matchings = max(1, (degree - 2) // 2)
    for _ in range(num_matchings):
        order = list(range(num_nodes))
        rng.shuffle(order)
        for a, b in zip(order[0::2], order[1::2]):
            if a != b and not graph.has_edge(a, b):
                graph.add_edge(a, b, pick())
    return graph


def _ring_cells(
    cx: int, cy: int, ring: int, side: int
) -> "list[Tuple[int, int]]":
    """Grid cells at Chebyshev distance exactly ``ring`` from ``(cx, cy)``."""
    if ring == 0:
        return [(cx, cy)]
    cells = []
    for gx in range(max(0, cx - ring), min(side, cx + ring + 1)):
        for gy in (cy - ring, cy + ring):
            if 0 <= gy < side:
                cells.append((gx, gy))
    for gy in range(max(0, cy - ring + 1), min(side, cy + ring)):
        for gx in (cx - ring, cx + ring):
            if 0 <= gx < side:
                cells.append((gx, gy))
    return cells


def yao_spanner_graph(
    num_nodes: int,
    num_cones: int = 6,
    weight_scale: int = 1000,
    seed: int = 0,
) -> WeightedGraph:
    """A Yao-graph spanner on random unit-square points.

    Each node connects to its nearest neighbour within each of ``num_cones``
    equal angular cones, giving a connected, geometric, *bounded-degree*
    graph (out-degree at most ``num_cones``, constant expected in-degree)
    whose edge weights are the rounded Euclidean distances.  This is the
    bounded-degree end of the topology zoo -- maximum degree independent of
    ``n``, diameter ``Theta(sqrt(n))`` -- and the workload on which the
    closed-form symbolic engine is benchmarked, so construction must stay
    cheap at ``n = 4096``: neighbour search walks an expected ``O(1)`` ring
    of ``sqrt(n) x sqrt(n)`` grid buckets per node.

    Parameters
    ----------
    num_nodes:
        Number of points placed uniformly in the unit square.
    num_cones:
        Number of angular sectors per node (at least 3; 6 keeps the graph
        connected in practice and any residual components are repaired by
        linking nearest pairs, as in :func:`random_geometric_graph`).
    weight_scale:
        Euclidean distances are scaled by this factor and rounded to
        positive integer weights.
    seed:
        Randomness seed; the construction is fully deterministic given it.
    """
    if num_nodes < 1:
        raise ValueError("yao_spanner_graph needs at least one node")
    if num_cones < 3:
        raise ValueError("num_cones must be at least 3")
    if weight_scale < 1:
        raise ValueError("weight_scale must be at least 1")
    rng = random.Random(seed)
    positions = [(rng.random(), rng.random()) for _ in range(num_nodes)]
    graph = WeightedGraph(nodes=range(num_nodes))
    if num_nodes == 1:
        return graph

    side = max(1, math.isqrt(num_nodes))

    def cell_of(x: float, y: float) -> Tuple[int, int]:
        return (min(side - 1, int(x * side)), min(side - 1, int(y * side)))

    buckets: dict = {}
    for index, (x, y) in enumerate(positions):
        buckets.setdefault(cell_of(x, y), []).append(index)

    two_pi = 2.0 * math.pi
    for u in range(num_nodes):
        ux, uy = positions[u]
        cx, cy = cell_of(ux, uy)
        best: "list[Optional[Tuple[float, int]]]" = [None] * num_cones
        ring = 0
        while ring <= 2 * side:
            # A cell at Chebyshev ring distance r is at least (r-1)/side
            # away, so once every cone holds a closer candidate the scan
            # is exact and can stop.
            floor_distance = (ring - 1) / side
            if (
                all(entry is not None for entry in best)
                and floor_distance > max(entry[0] for entry in best)
            ):
                break
            for cell in _ring_cells(cx, cy, ring, side):
                for v in buckets.get(cell, ()):
                    if v == u:
                        continue
                    dx = positions[v][0] - ux
                    dy = positions[v][1] - uy
                    distance = math.hypot(dx, dy)
                    sector = int((math.atan2(dy, dx) % two_pi) / two_pi * num_cones)
                    sector = min(sector, num_cones - 1)
                    if best[sector] is None or (distance, v) < best[sector]:
                        best[sector] = (distance, v)
            ring += 1
        for entry in best:
            if entry is None:
                continue
            distance, v = entry
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, max(1, round(distance * weight_scale)))

    # Repair any residual disconnection by linking nearest pairs, keeping
    # the weights geometric (same scheme as random_geometric_graph).
    components = graph.connected_components()
    while len(components) > 1:
        base = components[0]
        best_link: Optional[Tuple[float, int, int]] = None
        for other in components[1:]:
            for u in base:
                for v in other:
                    dx = positions[u][0] - positions[v][0]
                    dy = positions[u][1] - positions[v][1]
                    distance = math.hypot(dx, dy)
                    if best_link is None or distance < best_link[0]:
                        best_link = (distance, u, v)
        assert best_link is not None
        graph.add_edge(
            best_link[1], best_link[2], max(1, round(best_link[0] * weight_scale))
        )
        components = graph.connected_components()
    return graph


def random_weighted_graph(
    num_nodes: int,
    average_degree: float = 4.0,
    max_weight: int = 100,
    seed: int = 0,
) -> WeightedGraph:
    """A connected random graph with roughly the requested average degree.

    A convenient default workload for the approximation-quality experiments:
    connected, sparse, with a wide weight range so weighted and unweighted
    diameters genuinely differ.
    """
    if num_nodes < 2:
        raise ValueError("random_weighted_graph needs at least two nodes")
    probability = min(1.0, average_degree / max(1, num_nodes - 1))
    return erdos_renyi_graph(
        num_nodes,
        probability,
        max_weight=max_weight,
        seed=seed,
        ensure_connected=True,
    )
