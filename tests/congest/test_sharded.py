"""Sharded-engine specifics: partitioning, env handling, worker mode.

The cross-engine invariance guarantee is enforced by
``test_engine_differential.py`` (the sharded engine participates in the full
engine cross-product there); this file covers what is unique to sharding --
the contiguous CSR-aware partition and its boundary edge index, the
``REPRO_SHARDS`` / ``REPRO_SHARD_WORKERS`` environment contract, the
multiprocessing worker mode, and the 1-shard degeneracy to sparse semantics.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.congest import Network, NodeAlgorithm, Simulator, force_engine
from repro.congest.engine.sharded import (
    SHARDS_ENV_VAR,
    WORKERS_ENV_VAR,
    ShardWorkerError,
    close_worker_pools,
    resolve_shard_count,
    resolve_worker_count,
    shard_worker_pool,
)
from repro.congest.sssp import _BellmanFordAlgorithm, distributed_bellman_ford
from repro.graphs import (
    WeightedGraph,
    path_graph,
    random_weighted_graph,
    star_graph,
)

pytestmark = pytest.mark.engines


@pytest.fixture
def network():
    return Network(
        random_weighted_graph(18, average_degree=3.0, max_weight=30, seed=3)
    )


@pytest.fixture(autouse=True)
def _clean_shard_env(monkeypatch):
    monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
    monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)


@pytest.fixture(autouse=True)
def _clean_pools():
    yield
    close_worker_pools()


# Algorithms used by the worker-failure and pool tests.  Module-level classes
# so they pickle by reference and the persistent-pool path (not just the
# fresh-fork fallback) is what the tests exercise.
class _PidRecorder(NodeAlgorithm):
    """Records, per node, the pid of the process that ran its round."""

    name = "pid-recorder"

    def initialize(self, ctx):
        ctx.broadcast(("tick", 0))

    def receive(self, ctx, round_number, messages):
        ctx.memory["worker_pid"] = os.getpid()
        ctx.halt()


class _ExplodingAt(NodeAlgorithm):
    """Raises in every node's ``receive`` of one chosen round."""

    name = "exploding-at"

    def __init__(self, at_round: int) -> None:
        self.at_round = at_round

    def initialize(self, ctx):
        ctx.broadcast(("tick", 0))

    def receive(self, ctx, round_number, messages):
        if round_number == self.at_round:
            raise RuntimeError(f"worker boom in round {round_number}")
        ctx.broadcast(("tick", round_number))


class _KillOwnWorker(NodeAlgorithm):
    """SIGKILLs the hosting process -- but only when it is a forked worker."""

    name = "kill-own-worker"

    def initialize(self, ctx):
        ctx.memory["parent_pid"] = os.getpid()  # initialize runs in the parent
        ctx.broadcast(("tick", 0))

    def receive(self, ctx, round_number, messages):
        if os.getpid() != ctx.memory["parent_pid"]:
            os.kill(os.getpid(), signal.SIGKILL)
        ctx.broadcast(("tick", round_number))


class _UnpicklableError(Exception):
    """An exception that cannot cross the pipe (closure attribute)."""

    def __init__(self):
        super().__init__("unpicklable boom")
        self.hostage = lambda: None


class _NoReprUnpicklableError(Exception):
    """Unpicklable *and* its ``repr`` raises -- the worst-case fallback."""

    def __init__(self):
        super().__init__("boom")
        self.hostage = lambda: None

    def __repr__(self):
        raise ValueError("repr exploded")


class _RaisesInstance(NodeAlgorithm):
    """Raises a given exception instance in round 1."""

    name = "raises-instance"

    def __init__(self, factory) -> None:
        self.factory = factory

    def initialize(self, ctx):
        ctx.broadcast(("tick", 0))

    def receive(self, ctx, round_number, messages):
        raise self.factory()


# --------------------------------------------------------------------------- #
# Shard view: contiguous CSR-aware partition + boundary edge index.
# --------------------------------------------------------------------------- #
class TestShardView:
    def test_partition_is_contiguous_and_covers_all_nodes(self, network):
        view = network.shard_view(4)
        assert view.num_shards == 4
        concatenated = [node for shard in view.shards for node in shard]
        assert concatenated == network.nodes  # contiguous slices, in order
        assert all(shard for shard in view.shards)  # every shard non-empty
        assert view.starts[0] == 0 and view.starts[-1] == network.num_nodes
        for node in network.nodes:
            shard = view.shard_of(node)
            assert node in view.shards[shard]

    def test_boundary_edges_are_exactly_the_cross_shard_edges(self, network):
        view = network.shard_view(3)
        expected = {
            shard: set() for shard in range(view.num_shards)
        }
        for node in network.nodes:
            for neighbor in network.neighbors(node):
                if view.shard_of(node) != view.shard_of(neighbor):
                    expected[view.shard_of(node)].add((node, neighbor))
        for shard in range(view.num_shards):
            assert view.boundary_edges[shard] == expected[shard]
        assert view.cross_shard_edge_count == sum(
            len(edges) for edges in expected.values()
        )

    def test_single_shard_has_no_boundary(self, network):
        view = network.shard_view(1)
        assert view.shards == (tuple(network.nodes),)
        assert view.boundary_edges == (frozenset(),)
        assert view.cross_shard_edge_count == 0

    def test_partition_balances_degree_load(self):
        # A star's hub carries all the edges: with 2 shards the hub's shard
        # must stay small rather than splitting the leaves evenly.
        network = Network(star_graph(12, max_weight=5, seed=0))
        view = network.shard_view(2)
        hub_shard = view.shard_of(0)  # star_graph centers node 0
        other = 1 - hub_shard
        assert len(view.shards[hub_shard]) < len(view.shards[other])

    def test_invalid_shard_counts_rejected(self, network):
        for bad in (0, -1, network.num_nodes + 1):
            with pytest.raises(ValueError, match="num_shards"):
                network.shard_view(bad)
        with pytest.raises(ValueError, match="num_shards"):
            network.shard_view(2.5)

    def test_view_memoized_until_topology_mutation(self, network):
        first = network.shard_view(3)
        assert network.shard_view(3) is first
        assert network.shard_view(2) is not first
        assert network.shard_view(3) is first  # other counts don't evict
        nodes = network.nodes
        network.graph.add_edge(nodes[0], nodes[-1], 5)
        rebuilt = network.shard_view(3)
        assert rebuilt is not first


# --------------------------------------------------------------------------- #
# Environment contract: REPRO_SHARDS / REPRO_SHARD_WORKERS.
# --------------------------------------------------------------------------- #
class TestShardEnvironment:
    def test_auto_and_unset_default(self):
        assert resolve_shard_count(100, "") == 4
        assert resolve_shard_count(100, "auto") == 4
        assert resolve_shard_count(3, "") == 3  # never more shards than nodes
        assert resolve_shard_count(1, "auto") == 1

    def test_explicit_counts_clamped_to_node_count(self):
        assert resolve_shard_count(100, "8") == 8
        assert resolve_shard_count(5, "8") == 5
        assert resolve_shard_count(5, " 2 ") == 2

    @pytest.mark.parametrize("bad", ["0", "-3", "2.5", "many", "1e3"])
    def test_invalid_shard_counts_raise(self, bad):
        with pytest.raises(ValueError, match=SHARDS_ENV_VAR):
            resolve_shard_count(10, bad)

    def test_worker_counts(self):
        assert resolve_worker_count(4, "") == 1
        assert resolve_worker_count(4, "auto") == 1
        assert resolve_worker_count(4, "3") == 3
        assert resolve_worker_count(2, "16") == 2  # clamped to shard count

    @pytest.mark.parametrize("bad", ["0", "-1", "x"])
    def test_invalid_worker_counts_raise(self, bad):
        with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
            resolve_worker_count(4, bad)

    def test_bad_env_values_fail_the_run_loudly(self, network, monkeypatch):
        source = min(network.nodes)
        monkeypatch.setenv(SHARDS_ENV_VAR, "banana")
        with pytest.raises(ValueError, match=SHARDS_ENV_VAR):
            Simulator(network).run(
                _BellmanFordAlgorithm([source]),
                halt_on_quiescence=True,
                engine="sharded",
            )
        monkeypatch.setenv(SHARDS_ENV_VAR, "2")
        monkeypatch.setenv(WORKERS_ENV_VAR, "zero")
        with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
            Simulator(network).run(
                _BellmanFordAlgorithm([source]),
                halt_on_quiescence=True,
                engine="sharded",
            )


# --------------------------------------------------------------------------- #
# 1-shard degeneracy: a single shard is exactly the sparse loop.
# --------------------------------------------------------------------------- #
def test_one_shard_degenerates_to_sparse_semantics(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV_VAR, "1")
    for graph in (
        path_graph(7, max_weight=6, seed=1),
        random_weighted_graph(15, average_degree=3.5, max_weight=25, seed=8),
        WeightedGraph(nodes=[0]),
    ):
        network = Network(graph)
        source = min(network.nodes)
        sparse = Simulator(network).run(
            _BellmanFordAlgorithm([source]),
            halt_on_quiescence=True,
            engine="sparse",
        )
        sharded = Simulator(network).run(
            _BellmanFordAlgorithm([source]),
            halt_on_quiescence=True,
            engine="sharded",
        )
        assert sharded.outputs == sparse.outputs
        assert sharded.report == sparse.report
        assert {n: c.halted for n, c in sharded.contexts.items()} == {
            n: c.halted for n, c in sparse.contexts.items()
        }


# --------------------------------------------------------------------------- #
# Multiprocessing worker mode.
# --------------------------------------------------------------------------- #
class TestWorkerMode:
    def test_worker_mode_matches_sparse(self, network, monkeypatch):
        with force_engine("sparse"):
            reference = distributed_bellman_ford(network, min(network.nodes))
        monkeypatch.setenv(SHARDS_ENV_VAR, "4")
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        with force_engine("sharded"):
            result = distributed_bellman_ford(network, min(network.nodes))
        assert result == reference

    def test_worker_mode_returns_final_contexts(self, network, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV_VAR, "3")
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        result = Simulator(network).run(
            _BellmanFordAlgorithm([min(network.nodes)]),
            halt_on_quiescence=True,
            engine="sharded",
        )
        assert sorted(result.contexts) == sorted(network.nodes)
        assert all(ctx.halted for ctx in result.contexts.values())
        # Memory travelled back from the workers, not a stale parent copy.
        assert all("distances" in ctx.memory for ctx in result.contexts.values())

    def test_worker_mode_observer_stream_matches_serial(self, network, monkeypatch):
        def record(engine):
            rounds = []

            def observer(round_number, delivered):
                rounds.append(
                    (
                        round_number,
                        [(m.sender, m.receiver, m.payload, m.tag) for m in delivered],
                    )
                )

            Simulator(network).run(
                _BellmanFordAlgorithm([min(network.nodes)]),
                halt_on_quiescence=True,
                observer=observer,
                engine=engine,
            )
            return rounds

        serial = record("sparse")
        monkeypatch.setenv(SHARDS_ENV_VAR, "4")
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        assert record("sharded") == serial

    def test_worker_exceptions_propagate(self, network, monkeypatch):
        class _Exploding(NodeAlgorithm):
            name = "exploding"

            def initialize(self, ctx):
                ctx.broadcast(("boom", 1))

            def receive(self, ctx, round_number, messages):
                if round_number == 2:
                    raise RuntimeError("node program failure")
                ctx.broadcast(("boom", round_number))

        monkeypatch.setenv(SHARDS_ENV_VAR, "2")
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        with pytest.raises(RuntimeError, match="node program failure"):
            Simulator(network).run(_Exploding(), engine="sharded")

    def test_round_limit_parity_in_worker_mode(self, network, monkeypatch):
        from repro.congest.simulator import RoundLimitExceeded

        algorithm = _BellmanFordAlgorithm([min(network.nodes)])
        with pytest.raises(RoundLimitExceeded) as serial_info:
            Simulator(network, max_rounds=11).run(algorithm, engine="sparse")
        monkeypatch.setenv(SHARDS_ENV_VAR, "4")
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        with pytest.raises(RoundLimitExceeded) as worker_info:
            Simulator(network, max_rounds=11).run(algorithm, engine="sharded")
        assert str(worker_info.value) == str(serial_info.value)


# --------------------------------------------------------------------------- #
# Worker-failure handling: exception parity, tracebacks, dead workers,
# unpicklable exceptions.
# --------------------------------------------------------------------------- #
class TestWorkerFailureHandling:
    @pytest.fixture(autouse=True)
    def _worker_env(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV_VAR, "4")
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")

    def test_exception_type_and_message_match_sparse(self, network, monkeypatch):
        algorithm = _ExplodingAt(3)
        monkeypatch.delenv(SHARDS_ENV_VAR)
        monkeypatch.delenv(WORKERS_ENV_VAR)
        with pytest.raises(RuntimeError) as sparse_info:
            Simulator(network).run(algorithm, engine="sparse")
        monkeypatch.setenv(SHARDS_ENV_VAR, "4")
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        with pytest.raises(RuntimeError) as worker_info:
            Simulator(network).run(algorithm, engine="sharded")
        assert type(worker_info.value) is type(sparse_info.value)
        assert str(worker_info.value) == str(sparse_info.value)

    def test_worker_exception_carries_traceback_and_round(self, network):
        with pytest.raises(RuntimeError, match="worker boom in round 3") as info:
            Simulator(network).run(_ExplodingAt(3), engine="sharded")
        cause = info.value.__cause__
        assert isinstance(cause, ShardWorkerError)
        text = str(cause)
        assert "round 3" in text  # the failing round is named
        assert "worker traceback" in text
        # The worker-side traceback frames travelled the pipe intact.
        assert "in receive" in text
        assert "worker boom in round 3" in text

    def test_killed_worker_raises_clear_error_not_eoferror(self, network):
        with pytest.raises(ShardWorkerError) as info:
            Simulator(network).run(_KillOwnWorker(), engine="sharded")
        text = str(info.value)
        assert "died without reporting a result" in text
        assert "shard worker" in text
        assert "shards" in text
        assert f"signal {signal.SIGKILL}" in text
        assert "round 1" in text
        # The survivors were stopped: a follow-up run on the same network
        # must work (a fresh pool replaces the broken one).
        result = Simulator(network).run(
            _PidRecorder(), halt_on_quiescence=True, engine="sharded"
        )
        assert sorted(result.contexts) == sorted(network.nodes)

    def test_unpicklable_exception_still_reports(self, network):
        with pytest.raises(
            RuntimeError, match="unpicklable node-program exception"
        ) as info:
            Simulator(network).run(
                _RaisesInstance(_UnpicklableError), engine="sharded"
            )
        assert "unpicklable boom" in str(info.value)  # repr(exc) made it over
        assert isinstance(info.value.__cause__, ShardWorkerError)

    def test_unpicklable_exception_with_raising_repr_still_reports(self, network):
        with pytest.raises(
            RuntimeError, match=r"whose repr\(\) raised"
        ) as info:
            Simulator(network).run(
                _RaisesInstance(_NoReprUnpicklableError), engine="sharded"
            )
        assert "_NoReprUnpicklableError" in str(info.value)


# --------------------------------------------------------------------------- #
# Persistent worker pool: reuse, invalidation, teardown.
# --------------------------------------------------------------------------- #
class TestWorkerPool:
    @pytest.fixture(autouse=True)
    def _worker_env(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV_VAR, "4")
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")

    @staticmethod
    def _worker_pids_of(result):
        return {ctx.memory["worker_pid"] for ctx in result.contexts.values()}

    def test_consecutive_runs_reuse_the_pool(self, network):
        first = Simulator(network).run(
            _PidRecorder(), halt_on_quiescence=True, engine="sharded"
        )
        second = Simulator(network).run(
            _PidRecorder(), halt_on_quiescence=True, engine="sharded"
        )
        pids_first = self._worker_pids_of(first)
        pids_second = self._worker_pids_of(second)
        assert pids_first == pids_second  # same worker processes served both
        assert os.getpid() not in pids_first  # and they really were workers
        assert len(pids_first) == 2

    def test_pooled_runs_bit_identical_to_fresh_and_sparse(self, network):
        source = min(network.nodes)
        with force_engine("sparse"):
            reference = distributed_bellman_ford(network, source)
        results = []
        with shard_worker_pool(network) as pool:
            pids = pool.worker_pids()
            for _ in range(2):  # both runs reuse the pinned pool
                with force_engine("sharded"):
                    results.append(distributed_bellman_ford(network, source))
            assert pool.worker_pids() == pids
            assert not pool.closed and not pool.broken
        for result in results:
            assert result == reference
        assert pool.closed  # context-manager teardown

    def test_pool_survives_node_program_errors(self, network):
        before = self._worker_pids_of(
            Simulator(network).run(
                _PidRecorder(), halt_on_quiescence=True, engine="sharded"
            )
        )
        with pytest.raises(RuntimeError, match="worker boom"):
            Simulator(network).run(_ExplodingAt(2), engine="sharded")
        from repro.congest.simulator import RoundLimitExceeded

        with pytest.raises(RoundLimitExceeded):
            Simulator(network, max_rounds=3).run(
                _BellmanFordAlgorithm([min(network.nodes)]), engine="sharded"
            )
        after = self._worker_pids_of(
            Simulator(network).run(
                _PidRecorder(), halt_on_quiescence=True, engine="sharded"
            )
        )
        assert before == after  # neither failure burned the forked workers

    def test_graph_mutation_invalidates_the_pool(self, network):
        before = self._worker_pids_of(
            Simulator(network).run(
                _PidRecorder(), halt_on_quiescence=True, engine="sharded"
            )
        )
        nodes = network.nodes
        network.graph.add_edge(nodes[0], nodes[-1], 7)
        with force_engine("sparse"):
            reference = distributed_bellman_ford(network, min(network.nodes))
        with force_engine("sharded"):
            result = distributed_bellman_ford(network, min(network.nodes))
        assert result == reference  # fresh pool sees the mutated topology
        after = self._worker_pids_of(
            Simulator(network).run(
                _PidRecorder(), halt_on_quiescence=True, engine="sharded"
            )
        )
        assert before.isdisjoint(after)  # the stale pool was replaced

    def test_pool_context_manager_validates_worker_count(self, network):
        with pytest.raises(ValueError, match="at least 2 workers"):
            with shard_worker_pool(network, num_workers=1):
                pass  # pragma: no cover

    def test_close_worker_pools_tears_everything_down(self, network):
        Simulator(network).run(
            _PidRecorder(), halt_on_quiescence=True, engine="sharded"
        )
        from repro.congest.engine.sharded import _POOLS

        pools = list(_POOLS.values())
        assert pools  # the run left a registered pool behind
        close_worker_pools()
        assert not _POOLS
        assert all(pool.closed for pool in pools)
