"""The dense NumPy engine: whole rounds as vectorized scatter/reduce.

Eligible protocols declare a :class:`MinPlusSchema`
(:meth:`NodeAlgorithm.message_schema`); for those the engine never creates a
single :class:`Message` object (unless an observer needs them).  Per round it

1. charges the in-flight broadcasts analytically -- each sender's per-edge
   bit load is the sum of its improved entries' exact
   :func:`~repro.congest.message.encode_value` sizes, computed with a
   vectorized (and exact) ``int.bit_length``;
2. relaxes all deliveries at once with a masked gather over the network's
   CSR adjacency (the PR 1 kernel snapshot) and a ``minimum.reduceat`` per
   receiver -- the scatter/reduce formulation of the synchronous min-plus
   round -- applying the schema's value cap and per-column activity windows;
3. re-broadcasts either the strictly improved entries (the node programs'
   "announce on improvement" rule) or, for announce-schedule schemas, the
   masked scatter of entries whose gate fires this round (Algorithm 2's
   time-of-arrival rule ``value <= offset``, at most once per entry).

Weight-override runs (Algorithm 1's rounded weights ``w_i`` pre-loaded via
``initial_memory``) and per-column weight transforms (Algorithm 3's level
columns) replace the CSR weight gather with per-receiver override /
per-column weight matrices built once up front.

Protocols declaring a :class:`TreeSchema` (the flood/echo tree primitives:
BFS-tree build, pipelined broadcast, convergecast, pipelined gather) are
dispatched to :mod:`repro.congest.engine.dense_tree`, which derives the
whole message schedule analytically; the family's ``flood`` member (min-id
leader election) unwraps to its :class:`MinPlusSchema` and runs through the
vectorized loop below.

The result -- outputs, contexts and the :class:`RoundReport` -- is
bit-identical to executing the node program on the sparse/legacy engines;
``tests/congest/test_engine_differential.py`` enforces this across random,
star/path and single-node networks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.congest.algorithm import NodeAlgorithm, NodeContext
from repro.congest.engine import dense_tree
from repro.congest.engine.base import ExecutionEngine, register_engine
from repro.congest.engine.minplus import resolve_weight_overrides
from repro.congest.engine.schema import MinPlusSchema, TreeSchema
from repro.congest.engine.types import (
    RoundLimitExceeded,
    RoundReport,
    SimulationResult,
)
from repro.congest.message import Message
from repro.congest.network import Network
from repro.kernels.csr import CSRGraph

__all__ = ["DenseEngine"]

#: Largest magnitude float64 carries exactly; values at or beyond this would
#: make the vectorized relaxation diverge from the exact-int engines.
_EXACT_FLOAT_LIMIT = 2**53


def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """Exact ``int.bit_length`` of a non-negative int64 array.

    ``floor(log2(v)) + 1`` can be off by one where float rounding crosses a
    power of two, so the estimate is corrected with exact integer shifts.
    """
    v = values
    with np.errstate(divide="ignore"):
        est = np.where(
            v > 0, np.floor(np.log2(np.maximum(v, 1))).astype(np.int64) + 1, 0
        )
    est = np.where((v >> np.minimum(est, 62)) > 0, est + 1, est)
    est = np.where((est > 1) & ((v >> np.maximum(est - 1, 0)) == 0), est - 1, est)
    return est


class DenseEngine(ExecutionEngine):
    """Vectorized executor for min-plus flooding protocols."""

    name = "dense"

    def supports(
        self,
        network: Network,
        algorithm: NodeAlgorithm,
        initial_memory: Optional[Dict[int, Dict[str, Any]]] = None,
    ) -> bool:
        schema = algorithm.message_schema()
        if isinstance(schema, TreeSchema):
            if schema.kind != "flood":
                return dense_tree.tree_supports(network, schema, initial_memory)
            # The flood member carries ordinary min-plus semantics; fall
            # through to the MinPlusSchema eligibility checks below.
            schema = schema.flood
        if not isinstance(schema, MinPlusSchema):
            return False
        try:
            overrides = resolve_weight_overrides(network, schema, initial_memory)
        except ValueError:
            # Pre-loaded state the schema cannot express; such runs stay on
            # the sparse engine (which runs the node program as-is).
            return False
        # Every state value must stay exactly representable in float64, or
        # the relaxation sums would silently diverge from the exact-int
        # engines.  Conservative bound for the bundled schemas (whose initial
        # values are 0 or node ids): the largest id magnitude, the value cap
        # when the schema enforces one (plus one overshooting candidate),
        # otherwise the longest possible relaxation chain.  Runs that could
        # cross 2^53 fall back to the sparse engine; the run loop
        # additionally guards every scheduled payload, so a custom schema
        # with larger initial values fails loudly instead of drifting.
        bound = max((abs(node) for node in network.nodes), default=0)
        if schema.value_cap is not None:
            bound = max(bound, int(schema.value_cap))
        if schema.add_edge_weight and network.num_nodes > 1:
            max_weight = network.max_weight()
            if overrides is not None:
                max_weight = max(
                    (max(entry.values()) for entry in overrides.values() if entry),
                    default=1,
                )
            if schema.column_weight is not None:
                # column_weight is documented monotone, so the max base
                # weight bounds every transformed weight.
                max_weight = max(
                    schema.column_weight(column, max_weight)
                    for column in range(schema.num_columns)
                )
            if schema.value_cap is not None:
                bound += max_weight
            else:
                bound += network.num_nodes * max_weight
        return bound < _EXACT_FLOAT_LIMIT

    def run(
        self,
        network: Network,
        algorithm: NodeAlgorithm,
        max_rounds: int,
        initial_memory: Optional[Dict[int, Dict[str, Any]]] = None,
        halt_on_quiescence: bool = False,
        observer: Optional[Any] = None,
    ) -> SimulationResult:
        # Validate against the schema object actually executed (supports()
        # already ran in resolve_engine, but on its own schema fetch); the
        # in-run exactness guard below covers the 2^53 bound.
        schema = algorithm.message_schema()
        if isinstance(schema, TreeSchema):
            if schema.kind != "flood":
                return dense_tree.run_tree(
                    network,
                    algorithm,
                    schema,
                    max_rounds=max_rounds,
                    initial_memory=initial_memory,
                    halt_on_quiescence=halt_on_quiescence,
                    observer=observer,
                )
            schema = schema.flood  # min-plus semantics, executed below
        if not isinstance(schema, MinPlusSchema):
            raise ValueError(
                f"dense engine cannot execute protocol '{algorithm.name}'"
            )
        overrides = resolve_weight_overrides(network, schema, initial_memory)

        nodes = list(network.nodes)
        n = len(nodes)
        k = schema.num_columns
        bandwidth = network.bandwidth_bits
        strict = network.config.strict_bandwidth
        budget = schema.round_budget

        csr = CSRGraph.from_graph(network.graph)
        indptr, indices, weights = csr.numpy_arrays()
        degrees = np.diff(indptr)
        has_neighbors = (degrees > 0)[:, None]

        if overrides is not None:
            # Relaxations read the *receiver's* override for the sending
            # neighbor, so the per-directed-edge array is built from each
            # receiver's CSR slice (asymmetric overrides stay faithful).
            replaced = np.empty(len(indices), dtype=np.float64)
            for i, node in enumerate(nodes):
                table = overrides[node]
                for e in range(int(indptr[i]), int(indptr[i + 1])):
                    replaced[e] = table[nodes[int(indices[e])]]
            weights = replaced
        edge_weights = weights[:, None]
        if schema.column_weight is not None:
            edge_weights = self._column_weight_matrix(schema, weights, k)
        if (
            schema.add_edge_weight
            and edge_weights.size
            and (
                not np.isfinite(edge_weights).all()
                or np.abs(edge_weights).max() >= _EXACT_FLOAT_LIMIT
            )
        ):
            raise RuntimeError(
                "dense engine built a non-finite or non-exact edge weight; "
                "override and per-column weights must be integers of "
                f"magnitude below 2**53 (protocol '{algorithm.name}')"
            )

        window_first = window_last = None
        if schema.column_windows is not None:
            if len(schema.column_windows) != k:
                raise ValueError(
                    f"schema declares {len(schema.column_windows)} column "
                    f"windows for {k} columns"
                )
            window_first = np.array(
                [first for first, _ in schema.column_windows], dtype=np.int64
            )
            window_last = np.array(
                [last for _, last in schema.column_windows], dtype=np.int64
            )

        # Per-column constant part of one message's charged size: label,
        # optional key label(s), tuple overhead and tag.
        word_bits = network.word_bits
        overhead = np.array(
            [schema.payload_overhead_bits(j, word_bits) for j in range(k)],
            dtype=np.int64,
        ).reshape(1, k)

        dist = np.empty((n, k), dtype=np.float64)
        for i, node in enumerate(nodes):
            row = schema.initial(node)
            if len(row) != k:
                raise ValueError(
                    f"schema initial() returned {len(row)} values, expected {k}"
                )
            dist[i] = row

        if schema.send_initial == "all":
            sent = np.ones((n, k), dtype=bool)
        elif schema.send_initial == "finite":
            sent = np.isfinite(dist)
        elif schema.send_initial == "none":
            sent = np.zeros((n, k), dtype=bool)
        else:
            raise ValueError(f"unknown send_initial mode {schema.send_initial!r}")
        sent &= has_neighbors  # broadcasting over zero neighbors sends nothing
        announced = sent.copy() if schema.announce_once else None

        report = RoundReport(protocol=algorithm.name)
        round_number = 0
        halted = False

        while not halted:
            round_number += 1
            if round_number > max_rounds:
                raise RoundLimitExceeded(
                    f"protocol '{algorithm.name}' exceeded {max_rounds} rounds"
                )

            any_sent = bool(sent.any())

            # --- Accounting (analytic: one broadcast = degree copies) ------ #
            max_edge_charge = 1
            if any_sent:
                values = np.where(sent, dist, 0.0)
                if (
                    not np.isfinite(values).all()
                    or np.abs(values).max() >= _EXACT_FLOAT_LIMIT
                ):
                    raise RuntimeError(
                        "dense engine scheduled a non-finite or non-exact "
                        "payload; the message schema must only flood finite "
                        f"integers of magnitude below 2**53 "
                        f"(protocol '{algorithm.name}')"
                    )
                ivalues = values.astype(np.int64)
                # encode_value charges an integer bit_length(|v|) + 1 (sign
                # bit), minimum 1 -- negative ids (min-id flood) included.
                magnitudes = np.abs(ivalues)
                vbits = np.where(magnitudes > 0, _bit_lengths(magnitudes) + 1, 1)
                msg_bits = np.where(sent, overhead + vbits, 0)
                per_sender_bits = msg_bits.sum(axis=1)
                per_sender_msgs = sent.sum(axis=1)
                report.total_messages += int((per_sender_msgs * degrees).sum())
                report.total_bits += int((per_sender_bits * degrees).sum())
                report.max_message_bits = max(
                    report.max_message_bits, int(msg_bits.max())
                )
                over = per_sender_bits > bandwidth
                if over.any():
                    if strict:
                        first = int(per_sender_bits[np.argmax(over)])
                        raise ValueError(
                            f"protocol '{algorithm.name}' exceeded the "
                            f"bandwidth: {first} bits on one edge in one "
                            f"round (B={bandwidth})"
                        )
                    max_edge_charge = int(
                        np.ceil(per_sender_bits[over] / bandwidth).max()
                    )
            report.rounds += 1
            report.congested_rounds += max_edge_charge

            if observer is not None:
                observer(round_number, self._materialize(schema, nodes, csr, dist, sent))

            # --- Deliver and relax: masked gather + minimum.reduceat ------- #
            if any_sent:
                masked = np.where(sent, dist, np.inf)
                contributions = masked[indices]
                if schema.add_edge_weight:
                    contributions = contributions + edge_weights
                candidates = np.minimum.reduceat(contributions, indptr[:-1], axis=0)
                if schema.value_cap is not None:
                    candidates = np.where(
                        candidates <= schema.value_cap, candidates, np.inf
                    )
                if window_first is not None:
                    # A column relaxes only while its window is open at the
                    # receiver; a message sent in the window's last round was
                    # charged above but is discarded here, exactly as the
                    # node program drops announcements of a closed level.
                    relax_open = (round_number > window_first) & (
                        round_number <= window_last
                    )
                    candidates = np.where(relax_open[None, :], candidates, np.inf)
                new_dist = np.minimum(dist, candidates)
                improved = new_dist < dist
                dist = new_dist
            else:
                improved = np.zeros((n, k), dtype=bool)

            # --- Halt / schedule, mirroring the node program's receive ----- #
            if budget is not None and round_number >= budget:
                halted = True
                sent = np.zeros((n, k), dtype=bool)
            elif schema.announce_at is None:
                sent = improved & has_neighbors
            else:
                # Gated announcements: the improvement mask is irrelevant --
                # an entry may broadcast rounds after it last improved -- so
                # the scatter mask is eligibility AND the schedule gate.
                allowed = np.isfinite(dist)
                if announced is not None:
                    allowed = allowed & ~announced
                if window_first is not None:
                    in_window = (round_number >= window_first) & (
                        round_number <= window_last
                    )
                    allowed = allowed & in_window[None, :]
                    offsets = round_number - window_first
                else:
                    offsets = round_number
                allowed = allowed & np.asarray(
                    schema.announce_at(dist, offsets), dtype=bool
                )
                sent = allowed & has_neighbors
                if announced is not None:
                    announced |= sent

            if not halted and not sent.any():
                if halt_on_quiescence:
                    halted = True
                elif self._announcements_pending(
                    schema, dist, announced, has_neighbors, window_last, round_number
                ):
                    # Nothing in flight, but the announce schedule can still
                    # fire in a later round (a delayed window opening, an
                    # entry waiting for the round offset to reach its value):
                    # keep stepping rounds one by one.
                    continue
                elif budget is not None:
                    # Nothing in flight and nothing will ever be: the nodes
                    # idle (one charged round each) until the budget round
                    # halts them.
                    while round_number < budget:
                        round_number += 1
                        if round_number > max_rounds:
                            raise RoundLimitExceeded(
                                f"protocol '{algorithm.name}' exceeded "
                                f"{max_rounds} rounds"
                            )
                        report.rounds += 1
                        report.congested_rounds += 1
                        if observer is not None:
                            observer(round_number, [])
                    halted = True
                else:
                    # No budget and no quiescence halting: the protocol can
                    # never terminate.  Replay the idle rounds for a
                    # round-counting observer, then fail like the other
                    # engines do.
                    if observer is not None:
                        while round_number < max_rounds:
                            round_number += 1
                            report.rounds += 1
                            report.congested_rounds += 1
                            observer(round_number, [])
                    raise RoundLimitExceeded(
                        f"protocol '{algorithm.name}' exceeded {max_rounds} rounds"
                    )

        contexts: Dict[int, NodeContext] = {}
        for i, node in enumerate(nodes):
            ctx = NodeContext(node=node, network=network)
            if initial_memory:
                ctx.memory.update(initial_memory.get(node, {}))
            ctx.memory.update(schema.finalize(node, dist[i]))
            ctx._halted = True
            contexts[node] = ctx
        outputs = {node: algorithm.output(contexts[node]) for node in nodes}
        return SimulationResult(outputs=outputs, report=report, contexts=contexts)

    @staticmethod
    def _column_weight_matrix(
        schema: MinPlusSchema, weights: np.ndarray, k: int
    ) -> np.ndarray:
        """The ``(E, k)`` per-column weight matrix, built once up front.

        ``column_weight`` is evaluated through the *scalar* Python function
        on each distinct base weight (Algorithm 3's levels reuse the exact
        ``rounded_weight`` the node program calls), so the matrix is
        bit-identical to the per-message weights of the sparse engines.
        """
        unique, inverse = np.unique(weights, return_inverse=True)
        matrix = np.empty((len(weights), k), dtype=np.float64)
        for column in range(k):
            mapped = np.array(
                [float(schema.column_weight(column, int(base))) for base in unique],
                dtype=np.float64,
            )
            matrix[:, column] = mapped[inverse]
        return matrix

    @staticmethod
    def _announcements_pending(
        schema: MinPlusSchema,
        dist: np.ndarray,
        announced: Optional[np.ndarray],
        has_neighbors: np.ndarray,
        window_last: Optional[np.ndarray],
        round_number: int,
    ) -> bool:
        """Whether a gated announcement could still fire after this round."""
        if schema.announce_at is None:
            return False
        pending = np.isfinite(dist) & has_neighbors
        if announced is not None:
            pending = pending & ~announced
        if window_last is not None:
            pending = pending & (window_last > round_number)[None, :]
        return bool(pending.any())

    @staticmethod
    def _materialize(
        schema: MinPlusSchema,
        nodes: List[int],
        csr: CSRGraph,
        dist: np.ndarray,
        sent: np.ndarray,
    ) -> List[Message]:
        """Build the round's Message objects for an observer (slow path).

        Message *multiset* equals the sparse/legacy delivery; the within-round
        ordering is sender-major but may interleave keys differently.
        """
        delivered: List[Message] = []
        indptr, indices = csr.indptr, csr.indices
        for i in np.nonzero(sent.any(axis=1))[0]:
            sender = nodes[i]
            neighbor_labels = [
                nodes[indices[e]] for e in range(indptr[i], indptr[i + 1])
            ]
            for j in np.nonzero(sent[i])[0]:
                payload = schema.payload_for(int(j), float(dist[i, j]))
                for receiver in neighbor_labels:
                    delivered.append(
                        Message(
                            sender=sender,
                            receiver=receiver,
                            payload=payload,
                            tag=schema.tag,
                        )
                    )
        return delivered


register_engine(DenseEngine())
