"""Regression tests for the float-infinity *identity* bug class.

``x is math.inf`` is only true for the interned ``math.inf`` singleton; any
infinity produced by arithmetic, ``float("inf")``, or a NumPy array round
trip (``float(np.float64(np.inf)) is math.inf`` is ``False``) fails the
identity test while being equal and ``math.isinf``.  The nanongkai layer
compared distances by identity in 11 places; with the dense engine feeding
NumPy-derived values through these paths, every one of them must use
finiteness checks instead.  A lint-style test pins the invariant repo-wide.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np
import pytest

from repro.congest import Network
from repro.congest.algorithm import NodeContext
from repro.graphs import WeightedGraph, path_graph, random_weighted_graph
from repro.nanongkai import bounded_hop_sssp_protocol, multi_source_bounded_hop_protocol
from repro.nanongkai.bounded_distance_sssp import BoundedDistanceSsspAlgorithm
from repro.nanongkai.multi_source import MultiSourceBoundedHopAlgorithm
from repro.nanongkai.overlay import (
    OverlayGraph,
    build_skeleton_graph,
    build_shortcut_graph,
    embed_overlay_network,
    overlay_sssp_protocol,
)

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def _non_interned_infs():
    """Infinities that are == math.inf but fail the identity test."""
    plain = float("inf")
    numpy_derived = float(np.float64(np.inf))
    # The identity comparisons below are the *point* of this fixture, so the
    # repo linter's REP101 is suppressed for exactly this line.
    assert plain is not math.inf and numpy_derived is not math.inf  # replint: disable=REP101
    assert math.isinf(plain) and math.isinf(numpy_derived)
    return [plain, numpy_derived]


def test_no_float_identity_comparisons_left_in_src():
    """The lint guard of the acceptance criterion, now a thin wrapper over
    ``repro.lint``'s REP101: zero float-identity comparisons under ``src/``
    (``x is math.inf``, ``x is _INF`` with ``_INF = math.inf``, ...)."""
    from repro.lint import lint_paths

    findings = lint_paths([SRC_ROOT], select=["REP101"])
    rendered = [finding.render() for finding in findings]
    assert not rendered, f"float identity comparisons survive: {rendered}"


@pytest.mark.parametrize("bad_inf", _non_interned_infs())
def test_skeleton_graph_drops_non_interned_inf_entries(bad_inf):
    """``build_skeleton_graph`` must not turn an unreachable d~ entry into an
    infinite-weight overlay edge (which used to crash the rounding-level
    computation downstream via ``log2(inf)``)."""
    skeleton = [0, 1, 2]
    dtilde = {
        0: {0: 0.0, 1: 2.0, 2: bad_inf},
        1: {0: 2.0, 1: 0.0, 2: bad_inf},
        2: {0: bad_inf, 1: bad_inf, 2: 0.0},
    }
    overlay = build_skeleton_graph(skeleton, dtilde)
    assert overlay.edges() == [(0, 1, 2.0)]
    shortcut, _ = build_shortcut_graph(overlay, k=1)
    assert all(math.isfinite(w) for _, _, w in shortcut.edges())


@pytest.mark.parametrize("bad_inf", _non_interned_infs())
def test_overlay_neighbors_exclude_non_interned_inf_weights(bad_inf):
    """A stored non-interned infinity is still "no edge" for neighbors(),
    dijkstra() and bounded_hop_distances()."""
    overlay = OverlayGraph([0, 1, 2])
    overlay.set_weight(0, 1, 3.0)
    overlay.set_weight(1, 2, bad_inf)  # passes the weight > 0 guard
    assert overlay.neighbors(1) == [(0, 3.0)]
    assert overlay.dijkstra(0)[2] == math.inf
    assert overlay.bounded_hop_distances(0, 3)[2] == math.inf


@pytest.mark.parametrize("bad_inf", _non_interned_infs())
def test_overlay_sssp_with_numpy_derived_dtilde(bad_inf):
    """End-to-end Algorithm 4 + 5 where every unreachable d~ entry is a
    non-interned infinity (exactly what a NumPy-backed Algorithm 3 table
    looks like): the result must equal the interned-inf run, and the final
    broadcast must keep using the -1 sentinel for unreachable nodes."""
    network = Network(random_weighted_graph(10, average_degree=3.0, max_weight=9, seed=3))
    skeleton = sorted(network.nodes)[:3]
    dtilde, _ = multi_source_bounded_hop_protocol(network, skeleton, 2, 0.5, levels=2, seed=1)
    poisoned = {
        v: {s: (bad_inf if math.isinf(d) else d) for s, d in row.items()}
        for v, row in dtilde.items()
    }
    reference = embed_overlay_network(network, skeleton, dtilde, k=2)
    injected = embed_overlay_network(network, skeleton, poisoned, k=2)
    assert injected.skeleton_graph.edges() == reference.skeleton_graph.edges()
    ref_dist, ref_report = overlay_sssp_protocol(network, reference, skeleton[0], 0.5)
    got_dist, got_report = overlay_sssp_protocol(network, injected, skeleton[0], 0.5)
    assert got_dist == ref_dist
    assert got_report == ref_report


@pytest.mark.parametrize("bad_inf", _non_interned_infs())
def test_bounded_distance_announce_check_on_non_interned_inf(bad_inf):
    """Algorithm 2's announce condition must classify a non-interned
    infinite distance as unreachable: no broadcast, no announced flag."""
    network = Network(WeightedGraph(edges=[(0, 1, 1)]))
    algorithm = BoundedDistanceSsspAlgorithm(source=0, max_distance=5)
    ctx = NodeContext(node=1, network=network)
    ctx.memory["distance"] = bad_inf
    ctx.memory["announced"] = False
    algorithm.receive(ctx, round_number=3, messages=[])
    assert ctx._drain_outbox() == []
    assert ctx.memory["announced"] is False


@pytest.mark.parametrize("bad_inf", _non_interned_infs())
def test_multi_source_fold_and_announce_on_non_interned_inf(bad_inf):
    """Algorithm 3's level fold and announce gate must treat a non-interned
    infinite per-level distance as "level certified nothing"."""
    network = Network(WeightedGraph(edges=[(0, 1, 1)]))
    algorithm = MultiSourceBoundedHopAlgorithm(
        sources=[0], hop_bound=2, epsilon=0.5, levels=1, delays=[0]
    )
    ctx = NodeContext(node=1, network=network)
    algorithm.initialize(ctx)
    ctx.memory["current_level"][0] = 0
    ctx.memory["current_distance"][0] = bad_inf
    algorithm._fold_level(ctx, 0)
    assert ctx.memory["best"][0] == math.inf
    algorithm.receive(ctx, round_number=1, messages=[])
    assert all(
        message.payload[0] != "ms" for message in ctx._drain_outbox()
    ), "an unreachable instance must not announce"


@pytest.mark.parametrize("bad_inf", _non_interned_infs())
def test_bounded_hop_level_fold_on_non_interned_inf(bad_inf, monkeypatch):
    """Algorithm 1's per-level fold must skip non-interned infinities coming
    back from the (possibly NumPy-backed) Algorithm 2 runs."""
    import repro.nanongkai.bounded_hop_sssp as module

    network = Network(path_graph(5, max_weight=4, seed=1))
    source = 0
    expected, _ = bounded_hop_sssp_protocol(network, source, 2, 0.5, levels=3)

    real = module.bounded_distance_sssp_protocol

    def poisoned(*args, **kwargs):
        distances, report = real(*args, **kwargs)
        return (
            {v: (bad_inf if math.isinf(d) else d) for v, d in distances.items()},
            report,
        )

    monkeypatch.setattr(module, "bounded_distance_sssp_protocol", poisoned)
    got, _ = bounded_hop_sssp_protocol(network, source, 2, 0.5, levels=3)
    assert got == expected
