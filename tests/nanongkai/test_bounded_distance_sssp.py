"""Tests for Algorithm 2 (Bounded-Distance SSSP)."""

from __future__ import annotations

import math

import pytest

from repro.congest import Network
from repro.graphs import dijkstra, path_graph
from repro.nanongkai import bounded_distance_sssp_protocol

INF = math.inf


class TestCorrectness:
    @pytest.mark.parametrize("bound", [3, 8, 20, 100])
    def test_distances_within_bound(self, random_network, bound):
        distances, _ = bounded_distance_sssp_protocol(random_network, 0, bound)
        exact = dijkstra(random_network.graph, 0)
        for node in random_network.nodes:
            if exact[node] <= bound:
                assert distances[node] == exact[node]
            else:
                assert distances[node] == INF

    def test_source_zero(self, random_network):
        distances, _ = bounded_distance_sssp_protocol(random_network, 3, 10)
        assert distances[3] == 0

    def test_unknown_source_raises(self, random_network):
        with pytest.raises(KeyError):
            bounded_distance_sssp_protocol(random_network, 444, 5)

    def test_negative_bound_rejected(self, random_network):
        with pytest.raises(ValueError):
            bounded_distance_sssp_protocol(random_network, 0, -1)

    def test_zero_bound_only_source(self, random_network):
        distances, _ = bounded_distance_sssp_protocol(random_network, 0, 0)
        assert distances[0] == 0
        assert all(distances[v] == INF for v in random_network.nodes if v != 0)

    def test_override_weights(self, path_network):
        # Overriding every weight to 1 turns the run into a plain hop-bounded BFS.
        weights = {
            node: {neighbor: 1 for neighbor in path_network.neighbors(node)}
            for node in path_network.nodes
        }
        distances, _ = bounded_distance_sssp_protocol(
            path_network, 0, 3, weights=weights
        )
        for node in path_network.nodes:
            expected = node if node <= 3 else INF
            assert distances[node] == expected


class TestRoundCost:
    def test_rounds_linear_in_bound(self, random_network):
        _, small = bounded_distance_sssp_protocol(random_network, 0, 5)
        _, large = bounded_distance_sssp_protocol(random_network, 0, 50)
        assert small.rounds == 5 + 1
        assert large.rounds == 50 + 1

    def test_each_node_broadcasts_at_most_once(self, random_network):
        _, report = bounded_distance_sssp_protocol(random_network, 0, 10**6)
        num_edges = random_network.graph.num_edges
        assert report.total_messages <= 2 * num_edges

    def test_messages_fit_in_constant_number_of_words(self):
        graph = path_graph(10, max_weight=5, seed=2)
        network = Network(graph)
        _, report = bounded_distance_sssp_protocol(network, 0, 30)
        # Each message carries a protocol tag plus one distance value, i.e.
        # O(1) words of O(log n) bits: the congestion-adjusted count may pick
        # up a small constant factor but never more.
        assert report.congested_rounds <= 3 * report.rounds
