"""SciPy ``csgraph`` kernel backend (registered only when SciPy is importable).

Exactly the kind of drop-in the backend registry exists for: SciPy's compiled
Fibonacci-heap Dijkstra (``scipy.sparse.csgraph.dijkstra``) is an order of
magnitude faster again than the vectorized relaxation, so when SciPy is
present it becomes the ``auto`` choice for the exact-distance kernels.  The
hop-*bounded* kernel has no ``csgraph`` equivalent and is inherited from the
NumPy backend (SciPy implies NumPy).

The sparse matrix mirror of a snapshot is cached in ``csr.memo`` so repeated
kernel calls on the same snapshot build it once.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.kernels.backend import register_backend
from repro.kernels.csr import CSRGraph
from repro.kernels.numpy_backend import NumpyBackend

__all__ = ["ScipyBackend"]

_MATRIX_KEY = "scipy:csr-matrix"


class ScipyBackend(NumpyBackend):
    """Compiled Dijkstra for the exact kernels, NumPy relaxation for the rest."""

    name = "scipy"

    def _matrix(self, csr: CSRGraph) -> csr_matrix:
        matrix = csr.memo.get(_MATRIX_KEY)
        if matrix is None:
            indptr, indices, weights = csr.numpy_arrays()
            n = csr.num_nodes
            matrix = csr_matrix((weights, indices, indptr), shape=(n, n))
            csr.memo[_MATRIX_KEY] = matrix
        return matrix

    def multi_source_sssp(
        self, csr: CSRGraph, sources: Sequence[int]
    ) -> List[np.ndarray]:
        source_list = list(sources)
        if not source_list:
            return []
        # The CSR snapshot stores both directions of every undirected edge,
        # so the directed interpretation is already symmetric.
        distances = _csgraph_dijkstra(
            self._matrix(csr), directed=True, indices=source_list
        )
        return list(np.atleast_2d(distances))

    def sssp(self, csr: CSRGraph, source: int) -> np.ndarray:
        return self.multi_source_sssp(csr, [source])[0]


register_backend(ScipyBackend())
