"""Analytic executors for the tree-primitive (:class:`TreeSchema`) family.

The flood/echo tree primitives -- BFS-tree construction, pipelined
broadcast, convergecast, pipelined gather -- have message schedules that are
fully determined by the topology (and, for the tree-shaped kinds, the
declared tree): which node sends which payload over which edge in which
round never depends on runtime data the engine cannot see.  The dense
engine therefore does not interpret ``receive`` per node; it derives the
whole schedule up front and replays only the *accounting*:

1. a per-kind planner computes, for every send time ``t`` (``t = 0`` is
   ``initialize``; messages sent at ``t`` are delivered in round ``t + 1``),
   the aggregate message count, bit sum, largest single message and largest
   per-edge bit load of that round -- plus a lazy ``materialize(t)`` that
   reconstructs the exact message list in the sparse engine's enqueue order
   (sender in node order, program send order within a sender), used only
   for observers and strict-bandwidth violations;
2. a shared accounting loop turns those aggregates into the
   :class:`~repro.congest.engine.types.RoundReport` exactly as the sparse
   engine's single-pass accounting would, including the congestion charge
   ``max_edge ceil(bits / B)``, the strict-bandwidth first-violation error
   text, and the round-limit failure mode;
3. a per-kind finalizer rebuilds every node's memory as the node program
   would have left it, so outputs and contexts are engine-independent.

All derivations mirror ``repro.congest.primitives`` statement by statement;
``tests/congest/test_engine_differential.py`` pins the bit-identical
guarantee across random, structured and single-node networks.
"""

from __future__ import annotations

import math
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.congest.algorithm import NodeAlgorithm, NodeContext
from repro.congest.engine.schema import TreeSchema
from repro.congest.engine.types import (
    RoundLimitExceeded,
    RoundReport,
    SimulationResult,
)
from repro.congest.message import Message, message_size_bits
from repro.congest.network import Network

__all__ = ["tree_supports", "run_tree"]

#: ``materialize(t)`` -> ``[(sender, receiver, payload), ...]`` in enqueue order.
_Materializer = Callable[[int], List[Tuple[int, int, Tuple[Any, ...]]]]


@dataclass
class _TreePlan:
    """One run's precomputed schedule: aggregates per send time plus hooks."""

    rounds: int
    msgs: List[int]
    bits: List[int]
    max_message: List[int]
    max_edge: List[int]
    materialize: _Materializer
    memory: Dict[int, Dict[str, Any]]


class _Unsupported(ValueError):
    """The schema/topology combination cannot be reproduced analytically."""


# --------------------------------------------------------------------------- #
# Shared tree validation (broadcast / convergecast / gather)
# --------------------------------------------------------------------------- #
@dataclass
class _TreeArrays:
    """The declared tree, validated against the topology and node order."""

    nodes: List[int]
    order: Dict[int, int]
    root: int
    depth: Dict[int, int]
    parent: Dict[int, Optional[int]]
    children: Dict[int, List[int]]
    height: int


def _tree_arrays(network: Network, schema: TreeSchema) -> _TreeArrays:
    """Validate ``schema``'s tree maps; raise :class:`_Unsupported` on any
    shape the node program would not execute cleanly (wrong root, missing
    nodes, non-edges, inconsistent depths/children), so such runs fall back
    to the engines that interpret the program and fail *its* way.

    Deliberately *not* memoized (unlike the BFS layering): ``supports()``
    and ``run()`` hand us distinct schema objects whose tree maps are plain
    dicts -- no weakref anchor to key a cache on safely -- and one dict
    sweep per call is noise next to the schedule construction it guards.
    """
    nodes = list(network.nodes)
    order = {node: i for i, node in enumerate(nodes)}
    root = schema.root
    depth = schema.depth
    parent = schema.parent
    if root not in order:
        raise _Unsupported(f"tree root {root} is not a node of the network")
    actual_children: Dict[int, List[int]] = {node: [] for node in nodes}
    for node in nodes:
        if node not in depth or node not in parent:
            raise _Unsupported(f"tree maps do not cover node {node}")
    if parent[root] is not None or depth[root] != 0:
        raise _Unsupported("tree root must have no parent and depth 0")
    for node in nodes:
        if node == root:
            continue
        p = parent[node]
        if p is None or p not in order:
            raise _Unsupported(f"node {node} has no valid tree parent")
        if depth[node] != depth[p] + 1:
            raise _Unsupported(f"node {node} breaks the depth invariant")
        if node not in network.neighbors(p):
            raise _Unsupported(f"tree edge ({p}, {node}) is not a network edge")
        actual_children[p].append(node)
    children: Dict[int, List[int]] = {}
    for node in nodes:
        declared = list((schema.children or {}).get(node, []))
        if len(set(declared)) != len(declared) or set(declared) != set(
            actual_children[node]
        ):
            raise _Unsupported(f"children of {node} disagree with the parent map")
        children[node] = declared
    height = max(depth[node] for node in nodes)
    return _TreeArrays(
        nodes=nodes,
        order=order,
        root=root,
        depth=dict(depth),
        parent={node: parent[node] for node in nodes},
        children=children,
        height=height,
    )


def _empty_plan(memory: Dict[int, Dict[str, Any]]) -> _TreePlan:
    return _TreePlan(
        rounds=0,
        msgs=[],
        bits=[],
        max_message=[],
        max_edge=[],
        materialize=lambda t: [],
        memory=memory,
    )


# --------------------------------------------------------------------------- #
# BFS-tree construction (flood-and-echo)
# --------------------------------------------------------------------------- #
#: Memoized explore-flood layerings, keyed like ``Network.shard_view``: per
#: graph (by ``id``, evicted via ``weakref.finalize`` when the graph dies --
#: :class:`WeightedGraph` is deliberately unhashable), by (mutation counter,
#: root).  ``supports()`` and ``run()`` both need the layering, so one run
#: would otherwise walk the graph twice; ``None`` records a disconnected
#: outcome.
_BFS_LAYER_CACHE: Dict[int, Dict[Tuple[Any, int], Any]] = {}


def _bfs_layers(
    network: Network, root: int
) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    """Hop depths and min-id parents of the explore flood; raises
    :class:`_Unsupported` when the flood cannot span the topology."""
    graph = network.graph
    version = getattr(graph, "_version", None)
    key = (version, root)
    if version is not None:
        per_graph = _BFS_LAYER_CACHE.get(id(graph))
        if per_graph is not None and key in per_graph:
            cached = per_graph[key]
            if cached is None:
                raise _Unsupported(
                    "the topology is disconnected: the flood never ends"
                )
            return cached
    try:
        layering = _compute_bfs_layers(network, root)
    except _Unsupported:
        layering = None
    if version is not None:
        per_graph = _BFS_LAYER_CACHE.get(id(graph))
        if per_graph is None:
            per_graph = _BFS_LAYER_CACHE[id(graph)] = {}
            weakref.finalize(graph, _BFS_LAYER_CACHE.pop, id(graph), None)
        if any(entry[0] != version for entry in per_graph):
            per_graph.clear()  # drop layerings of a mutated topology
        per_graph[key] = layering
    if layering is None:
        raise _Unsupported("the topology is disconnected: the flood never ends")
    return layering


def _compute_bfs_layers(
    network: Network, root: int
) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    depth: Dict[int, int] = {root: 0}
    frontier = [root]
    while frontier:
        next_frontier: List[int] = []
        for node in frontier:
            for neighbor in network.neighbors(node):
                if neighbor not in depth:
                    depth[neighbor] = depth[node] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    if len(depth) != network.num_nodes:
        raise _Unsupported("the topology is disconnected: the flood never ends")
    parent: Dict[int, Optional[int]] = {root: None}
    for node in network.nodes:
        if node == root:
            continue
        d = depth[node]
        # The node program adopts min(explore_msgs, key=(payload depth,
        # sender)); all offers carry depth d - 1, so the min-id neighbor
        # one level up wins.
        parent[node] = min(
            u for u in network.neighbors(node) if depth[u] == d - 1
        )
    return depth, parent


def _bfs_plan(network: Network, schema: TreeSchema, word_bits: int) -> _TreePlan:
    root = schema.root
    tag = schema.tag
    nodes = list(network.nodes)
    order = {node: i for i, node in enumerate(nodes)}
    if root not in order:
        raise _Unsupported(f"root {root} is not a node of the network")
    depth, parent = _bfs_layers(network, root)
    height = max(depth.values())

    children: Dict[int, List[int]] = {node: [] for node in nodes}
    for node in nodes:  # node order = the adopt inbox order children arrive in
        if node != root:
            children[parent[node]].append(node)

    up: Dict[int, int] = {}
    same: Dict[int, int] = {}
    down: Dict[int, int] = {}
    for node in nodes:
        d = depth[node]
        u = s = dn = 0
        for neighbor in network.neighbors(node):
            nd = depth[neighbor]
            if nd == d - 1:
                u += 1
            elif nd == d:
                s += 1
            else:
                dn += 1
        up[node], same[node], down[node] = u, s, dn

    # pending_neighbors empties at d (only up-neighbors), d+1 (same-depth
    # explores rejected) or d+2 (down-neighbors' adopt/reject replies).
    pending_empty = {
        node: depth[node]
        + (2 if down[node] else 1 if same[node] else 0)
        for node in nodes
    }
    # Echo round: all children echoed and the pending set is empty.  The
    # root's floor of 1 covers the single-node network (first receive call).
    echo: Dict[int, int] = {}
    for node in sorted(nodes, key=lambda v: -depth[v]):
        t = pending_empty[node]
        if node == root:
            t = max(t, 1)
        for child in children[node]:
            t = max(t, echo[child] + 1)
        echo[node] = t
    stop_start = echo[root]
    rounds = stop_start + height

    explore_bits = [
        message_size_bits(("explore", d), tag=tag, word_bits=word_bits)
        for d in range(height + 1)
    ]
    adopt_bits = message_size_bits(("adopt",), tag=tag, word_bits=word_bits)
    reject_bits = message_size_bits(("reject",), tag=tag, word_bits=word_bits)
    done_bits = message_size_bits(("done",), tag=tag, word_bits=word_bits)
    stop_bits = message_size_bits(("stop",), tag=tag, word_bits=word_bits)

    msgs = [0] * rounds
    bits = [0] * rounds
    max_message = [0] * rounds
    max_edge = [0] * rounds

    def add(t: int, count: int, per_bits: int) -> None:
        if count:
            msgs[t] += count
            bits[t] += count * per_bits
            if per_bits > max_message[t]:
                max_message[t] = per_bits
            if per_bits > max_edge[t]:
                max_edge[t] = per_bits

    add(0, len(network.neighbors(root)), explore_bits[0])
    for node in nodes:
        d = depth[node]
        kids = len(children[node])
        if node == root:
            add(stop_start, kids, stop_bits)
            continue
        add(d, same[node] + down[node], explore_bits[d])
        add(d, 1, adopt_bits)
        add(d, up[node] - 1, reject_bits)
        add(d + 1, same[node], reject_bits)
        add(echo[node], 1, done_bits)
        add(stop_start + d, kids, stop_bits)
        if echo[node] == d:
            # Adopt and done leave on the same parent edge in one round.
            combo = adopt_bits + done_bits
            if combo > max_edge[d]:
                max_edge[d] = combo

    def materialize(t: int) -> List[Tuple[int, int, Tuple[Any, ...]]]:
        out: List[Tuple[int, int, Tuple[Any, ...]]] = []
        for node in nodes:
            d = depth[node]
            neighbors = network.neighbors(node)
            if node == root:
                if t == 0:
                    out.extend((node, nb, ("explore", 0)) for nb in neighbors)
                if t == stop_start:
                    out.extend((node, c, ("stop",)) for c in children[node])
                continue
            if t == d:
                p = parent[node]
                out.append((node, p, ("adopt",)))
                rejected = sorted(
                    (u for u in neighbors if depth[u] == d - 1 and u != p),
                    key=order.__getitem__,
                )
                out.extend((node, u, ("reject",)) for u in rejected)
                out.extend(
                    (node, nb, ("explore", d))
                    for nb in neighbors
                    if depth[nb] != d - 1
                )
            if t == d + 1 and same[node]:
                peers = sorted(
                    (u for u in neighbors if depth[u] == d),
                    key=order.__getitem__,
                )
                out.extend((node, u, ("reject",)) for u in peers)
            if t == echo[node]:
                out.append((node, parent[node], ("done",)))
            if t == stop_start + d:
                out.extend((node, c, ("stop",)) for c in children[node])
        return out

    memory = {
        node: {
            "parent": parent[node],
            "depth": depth[node],
            "children": list(children[node]),
            "pending_neighbors": set(),
            "echoed_children": set(children[node]),
            "sent_echo": True,
            "explored": True,
        }
        for node in nodes
    }
    return _TreePlan(rounds, msgs, bits, max_message, max_edge, materialize, memory)


# --------------------------------------------------------------------------- #
# Pipelined broadcast
# --------------------------------------------------------------------------- #
def _broadcast_plan(network: Network, schema: TreeSchema, word_bits: int) -> _TreePlan:
    tree = _tree_arrays(network, schema)
    values = list(schema.values)
    k = len(values)
    nodes = tree.nodes
    height = tree.height

    def final_memory() -> Dict[int, Dict[str, Any]]:
        memory = {}
        for node in nodes:
            entry: Dict[str, Any] = {
                "expected": k,
                "children": list(tree.children[node]),
                "received": list(values),
            }
            if node == tree.root:
                entry["forwarded"] = k
            memory[node] = entry
        return memory

    if k == 0 or height == 0:
        return _empty_plan(final_memory())

    bc_bits = [
        message_size_bits(("bc", i, values[i]), tag=schema.tag, word_bits=word_bits)
        for i in range(k)
    ]
    # layer[d] = number of tree edges out of depth-d parents (= nodes at d+1).
    layer = [0] * height
    for node in nodes:
        d = tree.depth[node]
        if d >= 1:
            layer[d - 1] += 1

    rounds = height + k - 1
    msgs = [0] * rounds
    bits = [0] * rounds
    for d in range(height):
        edges = layer[d]
        for i in range(k):  # value i leaves depth-d parents at t = d + i
            msgs[d + i] += edges
            bits[d + i] += edges * bc_bits[i]
    # Each tree edge carries at most one bc message per round, so the edge
    # load equals the largest value in the round's sliding index window.
    max_message = [0] * rounds
    window: deque = deque()  # indices i with decreasing bc_bits
    for t in range(rounds):
        if t < k:
            while window and bc_bits[window[-1]] <= bc_bits[t]:
                window.pop()
            window.append(t)
        while window and window[0] < t - height + 1:
            window.popleft()
        max_message[t] = bc_bits[window[0]]
    max_edge = list(max_message)

    def materialize(t: int) -> List[Tuple[int, int, Tuple[Any, ...]]]:
        out: List[Tuple[int, int, Tuple[Any, ...]]] = []
        for node in nodes:
            kids = tree.children[node]
            if not kids:
                continue
            i = t - tree.depth[node]
            if 0 <= i < k:
                payload = ("bc", i, values[i])
                out.extend((node, child, payload) for child in kids)
        return out

    return _TreePlan(
        rounds, msgs, bits, max_message, max_edge, materialize, final_memory()
    )


# --------------------------------------------------------------------------- #
# Convergecast
# --------------------------------------------------------------------------- #
def _convergecast_plan(
    network: Network, schema: TreeSchema, word_bits: int
) -> _TreePlan:
    tree = _tree_arrays(network, schema)
    nodes = tree.nodes
    node_values = schema.node_values
    for node in nodes:
        if node not in node_values:
            raise _Unsupported(f"convergecast is missing a value for node {node}")

    # Emit round: leaves emit during initialize (t = 0); an inner node emits
    # one round after its slowest child.  The fold applies children in their
    # arrival order -- by (emit round, node order) -- exactly as the inbox
    # interleaves them.
    emit: Dict[int, int] = {}
    acc: Dict[int, Any] = {}
    combine = schema.combine
    for node in sorted(nodes, key=lambda v: -tree.depth[v]):
        kids = tree.children[node]
        emit[node] = 1 + max((emit[c] for c in kids), default=-1)
        value = node_values[node]
        for child in sorted(kids, key=lambda c: (emit[c], tree.order[c])):
            value = combine(value, acc[child])
        acc[node] = value

    memory = {}
    for node in nodes:
        entry: Dict[str, Any] = {
            "children": list(tree.children[node]),
            "pending": set(),
            "accumulator": acc[node],
            "parent": tree.parent[node],
        }
        if node == tree.root:
            entry["result"] = acc[node]
        memory[node] = entry

    rounds = emit[tree.root]
    if rounds == 0:
        return _empty_plan(memory)

    msgs = [0] * rounds
    bits = [0] * rounds
    max_message = [0] * rounds
    agg_bits = {
        node: message_size_bits(
            ("agg", acc[node]), tag=schema.tag, word_bits=word_bits
        )
        for node in nodes
        if node != tree.root
    }
    for node, b in agg_bits.items():
        t = emit[node]
        msgs[t] += 1
        bits[t] += b
        if b > max_message[t]:
            max_message[t] = b
    max_edge = list(max_message)  # one upward message per edge per round

    def materialize(t: int) -> List[Tuple[int, int, Tuple[Any, ...]]]:
        return [
            (node, tree.parent[node], ("agg", acc[node]))
            for node in nodes
            if node != tree.root and emit[node] == t
        ]

    return _TreePlan(rounds, msgs, bits, max_message, max_edge, materialize, memory)


# --------------------------------------------------------------------------- #
# Pipelined gather (upcast)
# --------------------------------------------------------------------------- #
def _gather_plan(
    network: Network, schema: TreeSchema, word_bits: int, max_rounds: int
) -> _TreePlan:
    tree = _tree_arrays(network, schema)
    nodes = tree.nodes
    n = len(nodes)
    order = tree.order
    root = tree.root
    root_idx = order[root]
    records = schema.records or {}
    tag = schema.tag
    end_payload = ("end",)
    end_bits = message_size_bits(end_payload, tag=tag, word_bits=word_bits)

    # Lightweight queue simulation over (payload, bits) pairs: the schedule
    # depends on how the per-child streams interleave, so it is replayed --
    # but without Message objects, context dispatch or inbox pooling.
    queues: List[deque] = []
    pending: List[int] = []
    halted = [False] * n
    parent_idx = [-1] * n
    own_records: List[List[Any]] = []
    for i, node in enumerate(nodes):
        recs = list(records.get(node, []))
        own_records.append(recs)
        queues.append(
            deque(
                (("rec", record), message_size_bits(("rec", record), tag=tag, word_bits=word_bits))
                for record in recs
            )
        )
        pending.append(len(tree.children[node]))
        if node != root:
            parent_idx[i] = order[tree.parent[node]]
    collected: List[Any] = list(own_records[root_idx])

    sends_by_t: List[List[Tuple[int, int, Tuple[Any, ...], int]]] = []
    active = 0

    def step(i: int, out: List[Tuple[int, int, Tuple[Any, ...], int]]) -> None:
        if i != root_idx and queues[i]:
            payload, b = queues[i].popleft()
            out.append((i, parent_idx[i], payload, b))
            return
        if pending[i] == 0 and not queues[i]:
            if i == root_idx:
                halted[i] = True
            else:
                out.append((i, parent_idx[i], end_payload, end_bits))
                halted[i] = True

    init_sends: List[Tuple[int, int, Tuple[Any, ...], int]] = []
    for i in range(n):
        step(i, init_sends)
    sends_by_t.append(init_sends)
    active = n - sum(halted)

    rounds = 0
    while active and rounds <= max_rounds:
        rounds += 1
        for sender, receiver, payload, b in sends_by_t[rounds - 1]:
            if payload[0] == "rec":
                if receiver == root_idx:
                    collected.append(payload[1])
                else:
                    queues[receiver].append((payload, b))
            else:
                pending[receiver] -= 1
        current: List[Tuple[int, int, Tuple[Any, ...], int]] = []
        for i in range(n):
            if halted[i]:
                continue
            if i == root_idx:
                queues[i].clear()  # the root only accumulates
            step(i, current)
            if halted[i]:
                active -= 1
        sends_by_t.append(current)

    msgs = [0] * rounds
    bits = [0] * rounds
    max_message = [0] * rounds
    for t in range(rounds):
        for _, _, _, b in sends_by_t[t]:
            msgs[t] += 1
            bits[t] += b
            if b > max_message[t]:
                max_message[t] = b
    max_edge = list(max_message)  # one upward message per edge per round

    memory = {}
    for i, node in enumerate(nodes):
        memory[node] = {
            "queue": [],
            "collected": list(collected) if node == root else list(own_records[i]),
            "children_pending": set(),
            "parent": tree.parent[node],
            "sent_end": node != root,
        }

    def materialize(t: int) -> List[Tuple[int, int, Tuple[Any, ...]]]:
        return [
            (nodes[sender], nodes[receiver], payload)
            for sender, receiver, payload, _ in sends_by_t[t]
        ]

    return _TreePlan(rounds, msgs, bits, max_message, max_edge, materialize, memory)


# --------------------------------------------------------------------------- #
# Entry points used by the dense engine
# --------------------------------------------------------------------------- #
def _plan(
    network: Network, schema: TreeSchema, max_rounds: int
) -> _TreePlan:
    word_bits = network.word_bits
    if schema.kind == "bfs":
        return _bfs_plan(network, schema, word_bits)
    if schema.kind == "broadcast":
        return _broadcast_plan(network, schema, word_bits)
    if schema.kind == "convergecast":
        return _convergecast_plan(network, schema, word_bits)
    if schema.kind == "gather":
        return _gather_plan(network, schema, word_bits, max_rounds)
    raise _Unsupported(f"unknown tree kind {schema.kind!r}")


def tree_supports(
    network: Network,
    schema: TreeSchema,
    initial_memory: Optional[Dict[int, Dict[str, Any]]] = None,
) -> bool:
    """Cheap eligibility check: the declared tree (or, for ``bfs``, the
    topology) must be one whose schedule the planners reproduce exactly."""
    if initial_memory:
        return False
    try:
        if schema.kind == "bfs":
            if schema.root not in set(network.nodes):
                return False
            _bfs_layers(network, schema.root)
        elif schema.kind in ("broadcast", "convergecast", "gather"):
            tree = _tree_arrays(network, schema)
            if schema.kind == "convergecast":
                node_values = schema.node_values
                if any(node not in node_values for node in tree.nodes):
                    return False
        else:
            return False
    except _Unsupported:
        return False
    return True


def run_tree(
    network: Network,
    algorithm: NodeAlgorithm,
    schema: TreeSchema,
    max_rounds: int,
    initial_memory: Optional[Dict[int, Dict[str, Any]]] = None,
    halt_on_quiescence: bool = False,
    observer: Optional[Any] = None,
) -> SimulationResult:
    """Execute a tree-schema run; accounting is bit-identical to sparse."""
    name = algorithm.name
    if initial_memory:
        raise ValueError(
            f"dense engine cannot execute protocol '{name}' with pre-loaded memory"
        )
    try:
        plan = _plan(network, schema, max_rounds)
    except _Unsupported as error:
        raise ValueError(
            f"dense engine cannot execute protocol '{name}': {error}"
        ) from None

    rounds = plan.rounds
    if halt_on_quiescence and any(plan.msgs[t] == 0 for t in range(1, rounds)):
        # An idle round mid-protocol would make the sparse engine's
        # quiescence halt truncate the run; no bundled tree primitive stalls
        # mid-stream, so fail loudly instead of diverging silently.
        raise ValueError(
            f"dense engine cannot honor halt_on_quiescence for protocol "
            f"'{name}': the schedule has an idle round mid-protocol"
        )

    bandwidth = network.bandwidth_bits
    strict = network.config.strict_bandwidth
    tag = schema.tag
    report = RoundReport(protocol=name)
    for r in range(1, rounds + 1):
        if r > max_rounds:
            raise RoundLimitExceeded(
                f"protocol '{name}' exceeded {max_rounds} rounds"
            )
        t = r - 1
        max_edge_charge = 1
        if plan.msgs[t]:
            report.total_messages += plan.msgs[t]
            report.total_bits += plan.bits[t]
            if plan.max_message[t] > report.max_message_bits:
                report.max_message_bits = plan.max_message[t]
            if plan.max_edge[t] > bandwidth:
                if strict:
                    _raise_first_violation(
                        name, plan.materialize(t), tag, network.word_bits, bandwidth
                    )
                max_edge_charge = math.ceil(plan.max_edge[t] / bandwidth)
        report.rounds += 1
        report.congested_rounds += max_edge_charge
        if observer is not None:
            observer(
                r,
                [
                    Message(sender=s, receiver=v, payload=payload, tag=tag)
                    for s, v, payload in plan.materialize(t)
                ],
            )

    contexts: Dict[int, NodeContext] = {}
    for node in network.nodes:
        ctx = NodeContext(node=node, network=network)
        ctx.memory.update(plan.memory[node])
        ctx._halted = True
        contexts[node] = ctx
    outputs = {node: algorithm.output(contexts[node]) for node in network.nodes}
    return SimulationResult(outputs=outputs, report=report, contexts=contexts)


def _raise_first_violation(
    name: str,
    messages: List[Tuple[int, int, Tuple[Any, ...]]],
    tag: str,
    word_bits: int,
    bandwidth: int,
) -> None:
    """Replicate the sparse engine's per-round edge scan exactly: sum the
    per-edge bits in enqueue order, then raise on the first over-budget edge
    in first-insertion order -- same edge, same error text."""
    edge_bits: Dict[Tuple[int, int], int] = {}
    for sender, receiver, payload in messages:
        key = (sender, receiver)
        edge_bits[key] = edge_bits.get(key, 0) + message_size_bits(
            payload, tag=tag, word_bits=word_bits
        )
    for bits in edge_bits.values():
        if bits > bandwidth:
            raise ValueError(
                f"protocol '{name}' exceeded the bandwidth: {bits} bits on "
                f"one edge in one round (B={bandwidth})"
            )
    raise AssertionError("aggregate accounting flagged a violation none exists for")
