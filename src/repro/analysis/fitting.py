"""Power-law fits for extracting scaling exponents from measured round counts.

The benchmarks produce measured values ``rounds(n, D)``; what the paper's
theorems predict is the *exponent* structure (``n^{9/10} D^{3/10}``,
``n^{2/3}``, ``sqrt(k)``, ...).  These helpers perform ordinary least squares
in log space:

* :func:`fit_power_law` fits ``y ≈ c · x^a`` and reports ``a``, ``c`` and the
  coefficient of determination.
* :func:`fit_two_parameter_power_law` fits ``y ≈ c · n^a · D^b``, which the
  Theorem 1.1 scaling experiment (E7 in DESIGN.md) uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

try:  # The no-NumPy tier falls back to the pure normal-equations solver.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI job
    np = None

__all__ = ["PowerLawFit", "fit_power_law", "fit_two_parameter_power_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a log-log least-squares fit.

    Attributes
    ----------
    exponents:
        The fitted exponents (one per predictor).
    constant:
        The multiplicative constant ``c``.
    r_squared:
        Coefficient of determination in log space (1 means a perfect fit).
    """

    exponents: Tuple[float, ...]
    constant: float
    r_squared: float

    @property
    def exponent(self) -> float:
        """The single exponent (for one-predictor fits)."""
        return self.exponents[0]

    def predict(self, *predictors: float) -> float:
        """Evaluate the fitted law at the given predictor values."""
        if len(predictors) != len(self.exponents):
            raise ValueError(
                f"expected {len(self.exponents)} predictors, got {len(predictors)}"
            )
        value = self.constant
        for base, exponent in zip(predictors, self.exponents):
            value *= base**exponent
        return value


def _validate(xs: Sequence[float], ys: Sequence[float]) -> None:
    if len(xs) != len(ys):
        raise ValueError("predictor and response lengths differ")
    if len(xs) < 2:
        raise ValueError("need at least two data points to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fits need strictly positive data")


def _solve_normal_equations(
    design: Sequence[Sequence[float]], response: Sequence[float]
) -> List[float]:
    """OLS via the normal equations, in pure Python.

    The fits here have 2-3 well-scaled unknowns (log-space power laws), so
    Gaussian elimination with partial pivoting on ``X^T X b = X^T y`` is
    numerically ample.  Only used when NumPy is unavailable.
    """
    num_coeffs = len(design[0])
    ata = [
        [
            sum(row[i] * row[j] for row in design)
            for j in range(num_coeffs)
        ]
        for i in range(num_coeffs)
    ]
    aty = [
        sum(row[i] * y for row, y in zip(design, response)) for i in range(num_coeffs)
    ]
    # Forward elimination with partial pivoting on the augmented system.
    for col in range(num_coeffs):
        pivot = max(range(col, num_coeffs), key=lambda r: abs(ata[r][col]))
        if abs(ata[pivot][col]) < 1e-12:
            raise ValueError("singular design matrix: predictors are collinear")
        if pivot != col:
            ata[col], ata[pivot] = ata[pivot], ata[col]
            aty[col], aty[pivot] = aty[pivot], aty[col]
        for row in range(col + 1, num_coeffs):
            factor = ata[row][col] / ata[col][col]
            for k in range(col, num_coeffs):
                ata[row][k] -= factor * ata[col][k]
            aty[row] -= factor * aty[col]
    solution = [0.0] * num_coeffs
    for row in range(num_coeffs - 1, -1, -1):
        acc = aty[row] - sum(
            ata[row][k] * solution[k] for k in range(row + 1, num_coeffs)
        )
        solution[row] = acc / ata[row][row]
    return solution


def _log_least_squares(
    predictor_columns: Sequence[Sequence[float]], ys: Sequence[float]
) -> Tuple[List[float], float]:
    """Fit ``log y = sum_i a_i log x_i + log c``; return coefficients + R².

    ``predictor_columns`` are the raw (not yet logged) predictors; the
    intercept column is appended here.  Uses ``numpy.linalg.lstsq`` when
    NumPy is importable (the historical code path, bit-identical results)
    and the pure normal-equations solver otherwise.
    """
    log_cols = [[math.log(x) for x in col] for col in predictor_columns]
    log_y = [math.log(y) for y in ys]
    design = [
        [col[row] for col in log_cols] + [1.0] for row in range(len(log_y))
    ]
    if np is not None:
        solution_arr, _, _, _ = np.linalg.lstsq(
            np.asarray(design, dtype=float), np.asarray(log_y, dtype=float), rcond=None
        )
        solution = [float(value) for value in solution_arr]
    else:
        solution = _solve_normal_equations(design, log_y)
    predicted = [
        sum(value * coeff for value, coeff in zip(row, solution)) for row in design
    ]
    mean_y = sum(log_y) / len(log_y)
    residual = sum((y - p) ** 2 for y, p in zip(log_y, predicted))
    total = sum((y - mean_y) ** 2 for y in log_y)
    r_squared = 1.0 if total < 1e-15 else 1.0 - residual / total
    return solution, r_squared


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ c · x^a`` by least squares in log space."""
    _validate(xs, ys)
    solution, r_squared = _log_least_squares([xs], ys)
    return PowerLawFit(
        exponents=(solution[0],),
        constant=float(math.exp(solution[1])),
        r_squared=r_squared,
    )


def fit_two_parameter_power_law(
    ns: Sequence[float], ds: Sequence[float], ys: Sequence[float]
) -> PowerLawFit:
    """Fit ``y ≈ c · n^a · D^b`` by least squares in log space.

    Used by the Theorem 1.1 scaling experiment: the paper predicts
    ``a ≈ 9/10`` and ``b ≈ 3/10`` in the regime ``D = o(n^{1/3})``.
    """
    if not (len(ns) == len(ds) == len(ys)):
        raise ValueError("predictor and response lengths differ")
    _validate(ns, ys)
    _validate(ds, ys)
    solution, r_squared = _log_least_squares([ns, ds], ys)
    return PowerLawFit(
        exponents=(solution[0], solution[1]),
        constant=float(math.exp(solution[2])),
        r_squared=r_squared,
    )
