"""Tests for repro.runtime: the unified configure() entry point."""

from __future__ import annotations

import os

import pytest

from repro.runtime import RunConfig, configure

pytestmark = pytest.mark.service


class TestRunConfigValidation:
    def test_default_is_all_none(self):
        config = RunConfig()
        assert (config.engine, config.backend, config.shards, config.workers) == (
            None,
            None,
            None,
            None,
        )
        config.validate()

    def test_unknown_engine_names_registry(self):
        with pytest.raises(ValueError) as excinfo:
            RunConfig(engine="warp").validate()
        message = str(excinfo.value)
        assert "warp" in message and "sparse" in message and "sharded" in message

    def test_unknown_backend_names_registry(self):
        with pytest.raises(ValueError) as excinfo:
            RunConfig(backend="tpu").validate()
        message = str(excinfo.value)
        assert "tpu" in message and "python" in message

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "4", True])
    def test_bad_shards_rejected_at_construction(self, bad):
        with pytest.raises(ValueError, match="shards"):
            RunConfig(shards=bad)

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "4", True])
    def test_bad_workers_rejected_at_construction(self, bad):
        with pytest.raises(ValueError, match="workers"):
            RunConfig(workers=bad)

    def test_apply_validates_eagerly(self):
        with pytest.raises(ValueError, match="warp"):
            with RunConfig(engine="warp").apply():
                raise AssertionError("the body must not run")


class TestConfigureComposition:
    def test_engine_knob_forces_selection(self):
        from repro.congest.engine import base as engine_base

        assert engine_base._FORCED is None
        with configure(engine="symbolic"):
            assert engine_base._FORCED == "symbolic"
        assert engine_base._FORCED is None

    def test_backend_knob_forces_both_registries(self):
        from repro.kernels.backend import get_backend as kernel_backend
        from repro.quantum.backend import get_backend as quantum_backend

        with configure(backend="python"):
            assert kernel_backend().name == "python"
            assert quantum_backend().name == "python"

    def test_shard_knobs_set_and_restore_env(self):
        os.environ.pop("REPRO_SHARDS", None)
        previous_workers = os.environ.get("REPRO_SHARD_WORKERS")
        with configure(shards=3, workers=1):
            assert os.environ["REPRO_SHARDS"] == "3"
            assert os.environ["REPRO_SHARD_WORKERS"] == "1"
        assert "REPRO_SHARDS" not in os.environ
        assert os.environ.get("REPRO_SHARD_WORKERS") == previous_workers

    def test_restores_preexisting_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "7")
        with configure(shards=2):
            assert os.environ["REPRO_SHARDS"] == "2"
        assert os.environ["REPRO_SHARDS"] == "7"

    def test_restores_after_body_raises(self):
        os.environ.pop("REPRO_SHARDS", None)
        with pytest.raises(RuntimeError):
            with configure(engine="sparse", shards=5):
                raise RuntimeError("boom")
        assert "REPRO_SHARDS" not in os.environ
        from repro.congest.engine import base as engine_base

        assert engine_base._FORCED is None

    def test_shards_drive_sharded_engine(self):
        from repro.congest.engine.sharded import resolve_shard_count

        with configure(shards=4):
            assert resolve_shard_count(1000) == 4

    def test_end_to_end_run_under_configure(self):
        from repro.congest import Network, Simulator
        from repro.congest.sssp import _BellmanFordAlgorithm
        from repro.graphs import path_graph

        with configure(engine="sparse", backend="python"):
            result = Simulator(Network(path_graph(6))).run(
                _BellmanFordAlgorithm([0]), halt_on_quiescence=True
            )
        assert result.report.rounds == 6
