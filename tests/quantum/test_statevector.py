"""Tests for the dense state-vector register."""

from __future__ import annotations

import math

import pytest

from repro.quantum import HADAMARD, PAULI_X, StateVector, sample_counts
from repro.quantum.gates import PAULI_Z


def assert_allclose(actual, expected, tol=1e-9):
    """Elementwise closeness for sequences (``expected`` may be a scalar)."""
    actual = list(actual)
    if not hasattr(expected, "__len__"):
        expected = [expected] * len(actual)
    assert len(actual) == len(expected)
    for left, right in zip(actual, expected):
        assert abs(complex(left) - complex(right)) < tol


class TestConstruction:
    def test_initial_state_is_zero(self):
        state = StateVector(3)
        assert state.probability(0) == 1.0
        assert state.dimension == 8
        assert state.num_qubits == 3

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            StateVector(0)
        with pytest.raises(ValueError):
            StateVector(30)

    def test_norm_is_one(self):
        assert abs(StateVector(4).norm() - 1.0) < 1e-12

    def test_reset(self):
        state = StateVector(2)
        state.reset(3)
        assert state.probability(3) == 1.0
        with pytest.raises(ValueError):
            state.reset(9)

    def test_set_amplitudes_normalises(self):
        state = StateVector(1)
        state.set_amplitudes([3, 4])
        assert abs(state.probability(0) - 9 / 25) < 1e-12
        assert abs(state.probability(1) - 16 / 25) < 1e-12

    def test_set_amplitudes_validation(self):
        state = StateVector(2)
        with pytest.raises(ValueError):
            state.set_amplitudes([1, 0])
        with pytest.raises(ValueError):
            state.set_amplitudes([0, 0, 0, 0])

    def test_amplitudes_are_plain_lists(self):
        state = StateVector(2).apply_hadamard_all()
        assert isinstance(state.amplitudes, list)
        assert isinstance(state.probabilities(), list)
        assert all(isinstance(a, complex) for a in state.amplitudes)


class TestGates:
    def test_hadamard_creates_uniform(self):
        state = StateVector(1)
        state.apply_single_qubit_gate(HADAMARD, 0)
        assert abs(state.probability(0) - 0.5) < 1e-12
        assert abs(state.probability(1) - 0.5) < 1e-12

    def test_x_flips_target_qubit(self):
        state = StateVector(2)
        state.apply_single_qubit_gate(PAULI_X, 1)  # flips the high bit
        assert state.probability(2) == pytest.approx(1.0)

    def test_x_on_low_qubit(self):
        state = StateVector(2)
        state.apply_single_qubit_gate(PAULI_X, 0)
        assert state.probability(1) == pytest.approx(1.0)

    def test_hadamard_all(self):
        state = StateVector(3).apply_hadamard_all()
        assert_allclose(state.probabilities(), 1 / 8)

    def test_invalid_qubit_index(self):
        state = StateVector(2)
        with pytest.raises(ValueError):
            state.apply_single_qubit_gate(PAULI_X, 5)

    def test_invalid_gate_shape(self):
        state = StateVector(2)
        eye4 = [[1 if i == j else 0 for j in range(4)] for i in range(4)]
        with pytest.raises(ValueError):
            state.apply_single_qubit_gate(eye4, 0)

    def test_apply_full_unitary(self):
        state = StateVector(1)
        state.apply_unitary(PAULI_X)
        assert state.probability(1) == pytest.approx(1.0)

    def test_apply_full_unitary_wrong_shape(self):
        with pytest.raises(ValueError):
            StateVector(2).apply_unitary(PAULI_Z)

    def test_phase_oracle_flips_marked_sign(self):
        state = StateVector(2).prepare_uniform()
        state.apply_phase_oracle(lambda x: x == 2)
        amplitudes = state.amplitudes
        assert amplitudes[2].real < 0
        assert amplitudes[0].real > 0

    def test_phase_mask_matches_oracle(self):
        by_oracle = StateVector(2).prepare_uniform()
        by_oracle.apply_phase_oracle(lambda x: x in (1, 2))
        by_mask = StateVector(2).prepare_uniform()
        by_mask.apply_phase_mask([False, True, True, False])
        assert_allclose(by_mask.amplitudes, by_oracle.amplitudes)

    def test_gates_preserve_norm(self):
        state = StateVector(3).apply_hadamard_all()
        state.apply_phase_oracle(lambda x: x % 3 == 0)
        state.apply_diffusion()
        assert abs(state.norm() - 1.0) < 1e-10


class TestUniformAndDiffusion:
    def test_prepare_uniform_partial_domain(self):
        state = StateVector(3).prepare_uniform(5)
        probabilities = state.probabilities()
        assert_allclose(probabilities[:5], 1 / 5)
        assert_allclose(probabilities[5:], 0)

    def test_prepare_uniform_validation(self):
        with pytest.raises(ValueError):
            StateVector(2).prepare_uniform(9)

    def test_diffusion_is_reflection_about_mean(self):
        state = StateVector(2)
        state.set_amplitudes([0.9, 0.1, 0.3, math.sqrt(1 - 0.9**2 - 0.1**2 - 0.3**2)])
        before = state.amplitudes
        mean = sum(before) / len(before)
        state.apply_diffusion()
        assert_allclose(state.amplitudes, [2 * mean - value for value in before])

    def test_single_grover_iteration_amplifies_marked(self):
        state = StateVector(3).prepare_uniform()
        marked = 5
        before = state.probability(marked)
        state.apply_phase_oracle(lambda x: x == marked)
        state.apply_diffusion()
        assert state.probability(marked) > before


class TestMeasurement:
    def test_measure_deterministic_state(self):
        state = StateVector(2).reset(3)
        assert state.measure() == 3

    def test_measure_collapses(self):
        state = StateVector(2, rng=5).apply_hadamard_all()
        outcome = state.measure()
        assert state.probability(outcome) == pytest.approx(1.0)

    def test_sampling_distribution_roughly_uniform(self):
        state = StateVector(2, rng=11).apply_hadamard_all()
        counts = sample_counts(state, shots=4000)
        assert set(counts) == {0, 1, 2, 3}
        assert all(800 < count < 1200 for count in counts.values())

    def test_sample_does_not_collapse(self):
        state = StateVector(2).apply_hadamard_all()
        state.sample(10)
        assert_allclose(state.probabilities(), 1 / 4)

    def test_copy_independent(self):
        state = StateVector(2).apply_hadamard_all()
        clone = state.copy()
        clone.reset(0)
        assert_allclose(state.probabilities(), 1 / 4)

    def test_copy_rng_stream_is_independent(self):
        # Two identically seeded registers, each forked once; draining one
        # clone's stream must not perturb its original.
        state_a = StateVector(3, rng=9).apply_hadamard_all()
        state_b = StateVector(3, rng=9).apply_hadamard_all()
        clone_a = state_a.copy()
        state_b.copy().sample(100)
        clone_a.sample(100)
        assert state_a.sample(20) == state_b.sample(20)

    def test_copy_same_seed_gives_same_fork(self):
        state_a = StateVector(2, rng=4).apply_hadamard_all()
        state_b = StateVector(2, rng=4).apply_hadamard_all()
        assert state_a.copy().sample(20) == state_b.copy().sample(20)
