"""Network topology and CONGEST configuration.

A :class:`Network` wraps a connected :class:`~repro.graphs.WeightedGraph`
(the communication topology *and* the weighted input graph of the distance
problem -- in the paper the input graph is the network itself, with each edge
weight initially known to both endpoints) together with a
:class:`CongestConfig` fixing the bandwidth ``B``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graphs.properties import unweighted_diameter
from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["CongestConfig", "Network"]


@dataclass(frozen=True)
class CongestConfig:
    """Bandwidth configuration of a CONGEST network.

    Attributes
    ----------
    bandwidth_words:
        Number of ``O(log n)``-bit words a single per-edge, per-round message
        may carry.  The paper's model allows ``O(log n)`` bits, i.e. a small
        constant number of words; the default of 2 words matches the usual
        convention that a message holds one node identifier plus one distance
        value.
    word_bits_override:
        If set, the size of a word in bits; otherwise the word size is
        ``ceil(log2 n)`` rounded up to at least 8 bits.
    strict_bandwidth:
        When ``True`` the simulator raises if any single message exceeds the
        per-round budget.  When ``False`` oversized messages are accepted but
        charged extra rounds in the congestion-adjusted round count.
    """

    bandwidth_words: int = 2
    word_bits_override: int | None = None
    strict_bandwidth: bool = False

    def word_bits(self, num_nodes: int) -> int:
        """Size of one word in bits for an ``n``-node network."""
        if self.word_bits_override is not None:
            return self.word_bits_override
        return max(8, math.ceil(math.log2(max(2, num_nodes))))

    def bandwidth_bits(self, num_nodes: int) -> int:
        """Per-edge, per-round bandwidth ``B`` in bits."""
        return self.bandwidth_words * self.word_bits(num_nodes)


class Network:
    """A CONGEST communication network over a weighted graph.

    Parameters
    ----------
    graph:
        The weighted topology.  Must be connected: the paper (and the CONGEST
        distance literature generally) assumes a connected network, since
        otherwise the diameter is infinite and no node can learn about other
        components.
    config:
        Bandwidth configuration; defaults to 2 words of ``ceil(log2 n)`` bits.

    Notes
    -----
    The same object doubles as the problem input: ``graph`` carries the edge
    weights whose induced distances define the weighted diameter and radius.
    """

    def __init__(self, graph: WeightedGraph, config: CongestConfig | None = None) -> None:
        if graph.num_nodes == 0:
            raise ValueError("a CONGEST network needs at least one node")
        if graph.num_nodes > 1 and not graph.is_connected():
            raise ValueError("the CONGEST network topology must be connected")
        self._graph = graph
        self._config = config or CongestConfig()
        self._unweighted_diameter_cache: float | None = None
        self._unit_companion_cache: tuple[int, "Network"] | None = None

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> WeightedGraph:
        """The underlying weighted graph."""
        return self._graph

    @property
    def config(self) -> CongestConfig:
        """The bandwidth configuration."""
        return self._config

    @property
    def num_nodes(self) -> int:
        """Number of processors ``n``."""
        return self._graph.num_nodes

    @property
    def nodes(self) -> List[int]:
        """All node identifiers."""
        return self._graph.nodes

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """The neighbors of ``node`` in the topology."""
        return tuple(self._graph.neighbors(node))

    def edge_weight(self, u: int, v: int) -> int:
        """Weight of edge ``{u, v}`` (known initially to both endpoints)."""
        return self._graph.weight(u, v)

    def incident_weights(self, node: int) -> Dict[int, int]:
        """Mapping neighbor -> edge weight for all edges incident to ``node``."""
        return dict(self._graph.incident_edges(node))

    @property
    def bandwidth_bits(self) -> int:
        """Per-edge, per-round bandwidth ``B`` in bits."""
        return self._config.bandwidth_bits(self.num_nodes)

    @property
    def word_bits(self) -> int:
        """Size of one ``O(log n)``-bit word for this network."""
        return self._config.word_bits(self.num_nodes)

    def unweighted_diameter(self) -> float:
        """The topology's unweighted diameter ``D`` (cached)."""
        if self._unweighted_diameter_cache is None:
            if self.num_nodes == 1:
                self._unweighted_diameter_cache = 0.0
            else:
                self._unweighted_diameter_cache = float(
                    unweighted_diameter(self._graph)
                )
        return self._unweighted_diameter_cache

    def max_weight(self) -> int:
        """The maximum edge weight ``W`` (assumed globally known, as in Appendix A)."""
        return self._graph.max_weight()

    def unit_weight_companion(self) -> "Network":
        """The unit-weight twin of this network (same topology and config).

        Memoized on the instance and keyed by the graph's mutation counter,
        so repeated unweighted baselines (``distributed_unweighted_apsp``,
        ``classical_eccentricity_protocol``) reuse one companion -- and hence
        one cached CSR snapshot -- instead of re-freezing a fresh graph per
        call; any topology mutation transparently invalidates the memo.
        """
        version = getattr(self._graph, "_version", None)
        cached = self._unit_companion_cache
        if cached is not None and version is not None and cached[0] == version:
            return cached[1]
        companion = Network(self._graph.with_unit_weights(), self._config)
        if version is not None:
            self._unit_companion_cache = (version, companion)
        return companion

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(n={self.num_nodes}, m={self._graph.num_edges}, "
            f"B={self.bandwidth_bits} bits)"
        )
