"""Boolean functions and read-once formulas used by the Section 4 reductions.

The lower bounds reduce the approximation of weighted diameter/radius to the
two-party (Server-model) complexity of:

* ``F(x, y)  = AND_{i ∈ [2^s]} ( OR_{j ∈ [ℓ]} ( x_{i,j} AND y_{i,j} ) )``
  -- the diameter function of Lemma 4.4, a read-once ``AND ∘ OR`` composed
  with the two-party ``AND₂`` on each coordinate pair;
* ``F'(x, y) = OR_{i ∈ [2^s], j ∈ [ℓ]} ( x_{i,j} AND y_{i,j} )``
  -- the radius function of Lemma 4.9 (set disjointness, negated).

Both are of the form ``f ∘ GDT^{k/4}`` where ``GDT = OR₄ ∘ AND₂⁴`` and ``f``
is a read-once formula; ``VER`` is the promise version of ``GDT`` used by the
lifting theorem (Lemma 4.5).  This module provides concrete evaluators, the
indexing helpers for the ``x_{i,j}`` layout, and a tiny read-once-formula
class used by the approximate-degree experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

__all__ = [
    "ver_function",
    "gdt_function",
    "pair_index",
    "diameter_hardness_function",
    "radius_hardness_function",
    "ReadOnceFormula",
    "and_formula",
    "or_formula",
    "compose_read_once",
]


def ver_function(x: int, y: int) -> int:
    """The promise function ``VER`` of Lemma 4.5.

    ``VER(x, y) = 1`` iff ``x + y ≡ 0 or 1 (mod 4)`` for ``x, y ∈ {0,1,2,3}``.
    """
    if not 0 <= x <= 3 or not 0 <= y <= 3:
        raise ValueError("VER is defined on {0,1,2,3} x {0,1,2,3}")
    return 1 if (x + y) % 4 in (0, 1) else 0


def gdt_function(x_bits: Sequence[int], y_bits: Sequence[int]) -> int:
    """``GDT = OR₄ ∘ AND₂⁴``: 1 iff some coordinate has ``x_i = y_i = 1``.

    ``VER`` is a promise restriction of this function (Lemma 4.7's proof):
    when ``x`` is the indicator of two cyclically adjacent positions and ``y``
    the indicator of a single position, ``GDT`` computes exactly ``VER``.
    """
    if len(x_bits) != 4 or len(y_bits) != 4:
        raise ValueError("GDT takes two 4-bit inputs")
    return 1 if any(a == 1 and b == 1 for a, b in zip(x_bits, y_bits)) else 0


def pair_index(i: int, j: int, ell: int) -> int:
    """Flat index of the coordinate ``(i, j)`` with ``i ∈ [0, 2^s)`` and ``j ∈ [0, ℓ)``.

    The paper indexes ``x`` by ``x_{i,j}`` for ``i ∈ [1, 2^s]``, ``j ∈ [1, ℓ]``;
    we use zero-based indices throughout the code.
    """
    if j < 0 or j >= ell:
        raise ValueError(f"j={j} out of range [0, {ell})")
    if i < 0:
        raise ValueError(f"i={i} must be non-negative")
    return i * ell + j


def diameter_hardness_function(
    x: Sequence[int], y: Sequence[int], num_blocks: int, ell: int
) -> int:
    """``F(x, y) = AND_i OR_j (x_{i,j} AND y_{i,j})`` of Lemma 4.4.

    Parameters
    ----------
    x, y:
        Bit strings of length ``num_blocks * ell`` (Alice's and Bob's inputs).
    num_blocks:
        The outer fan-in ``2^s``.
    ell:
        The inner fan-in ``ℓ``.
    """
    expected = num_blocks * ell
    if len(x) != expected or len(y) != expected:
        raise ValueError(f"inputs must have length {expected}")
    for i in range(num_blocks):
        block_hit = False
        for j in range(ell):
            index = pair_index(i, j, ell)
            if x[index] == 1 and y[index] == 1:
                block_hit = True
                break
        if not block_hit:
            return 0
    return 1


def radius_hardness_function(
    x: Sequence[int], y: Sequence[int], num_blocks: int, ell: int
) -> int:
    """``F'(x, y) = OR_{i,j} (x_{i,j} AND y_{i,j})`` of Lemma 4.9."""
    expected = num_blocks * ell
    if len(x) != expected or len(y) != expected:
        raise ValueError(f"inputs must have length {expected}")
    return (
        1
        if any(a == 1 and b == 1 for a, b in zip(x, y))
        else 0
    )


# --------------------------------------------------------------------------- #
# Read-once formulas
# --------------------------------------------------------------------------- #
@dataclass
class ReadOnceFormula:
    """A read-once formula over AND / OR gates (each variable appears once).

    Attributes
    ----------
    gate:
        ``"var"``, ``"and"``, ``"or"`` or ``"not"``.
    variable:
        The variable index when ``gate == "var"``.
    children:
        The sub-formulas of an ``and`` / ``or`` / ``not`` gate.
    """

    gate: str
    variable: int = -1
    children: List["ReadOnceFormula"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.gate not in ("var", "and", "or", "not"):
            raise ValueError(f"unknown gate {self.gate!r}")
        if self.gate == "var" and self.variable < 0:
            raise ValueError("a leaf needs a non-negative variable index")
        if self.gate == "not" and len(self.children) != 1:
            raise ValueError("a NOT gate needs exactly one child")
        if self.gate in ("and", "or") and not self.children:
            raise ValueError(f"an {self.gate.upper()} gate needs children")

    # ------------------------------------------------------------------ #
    def variables(self) -> List[int]:
        """All variable indices, in leaf order."""
        if self.gate == "var":
            return [self.variable]
        out: List[int] = []
        for child in self.children:
            out.extend(child.variables())
        return out

    @property
    def num_variables(self) -> int:
        """Number of (distinct) variables in the formula."""
        return len(self.variables())

    def is_read_once(self) -> bool:
        """Check that each variable appears exactly once."""
        seen = self.variables()
        return len(seen) == len(set(seen))

    def evaluate(self, assignment: Sequence[int]) -> int:
        """Evaluate the formula on a 0/1 assignment (indexed by variable)."""
        if self.gate == "var":
            return 1 if assignment[self.variable] else 0
        if self.gate == "not":
            return 1 - self.children[0].evaluate(assignment)
        values = [child.evaluate(assignment) for child in self.children]
        if self.gate == "and":
            return 1 if all(values) else 0
        return 1 if any(values) else 0

    def as_callable(self) -> Callable[[Sequence[int]], int]:
        """Return ``self.evaluate`` as a plain function on assignments."""
        return self.evaluate


def and_formula(num_vars: int, offset: int = 0) -> ReadOnceFormula:
    """``AND`` of ``num_vars`` fresh variables starting at ``offset``."""
    if num_vars < 1:
        raise ValueError("an AND needs at least one variable")
    leaves = [ReadOnceFormula("var", variable=offset + i) for i in range(num_vars)]
    if num_vars == 1:
        return leaves[0]
    return ReadOnceFormula("and", children=leaves)


def or_formula(num_vars: int, offset: int = 0) -> ReadOnceFormula:
    """``OR`` of ``num_vars`` fresh variables starting at ``offset``."""
    if num_vars < 1:
        raise ValueError("an OR needs at least one variable")
    leaves = [ReadOnceFormula("var", variable=offset + i) for i in range(num_vars)]
    if num_vars == 1:
        return leaves[0]
    return ReadOnceFormula("or", children=leaves)


def compose_read_once(
    outer_gate: str, fan_in: int, inner_factory: Callable[[int], ReadOnceFormula]
) -> ReadOnceFormula:
    """Build ``gate(inner_0, ..., inner_{fan_in - 1})`` with disjoint variables.

    ``inner_factory(offset)`` must return a read-once formula whose variables
    start at ``offset`` and are consecutive; the offsets are advanced so the
    composition stays read-once.  This is how the experiments build
    ``f = AND_{2^s} ∘ OR_ℓ`` (Lemma 4.7) and ``f' = OR_k`` (Lemma 4.10).
    """
    if outer_gate not in ("and", "or"):
        raise ValueError("outer_gate must be 'and' or 'or'")
    children: List[ReadOnceFormula] = []
    offset = 0
    for _ in range(fan_in):
        child = inner_factory(offset)
        children.append(child)
        offset += child.num_variables
    if fan_in == 1:
        return children[0]
    return ReadOnceFormula(outer_gate, children=children)
