"""Vectorized statevector backend on NumPy complex arrays.

Registered only when NumPy imports.  Gate applications use the same butterfly
expressions as the pure-Python backend -- ``(a + b) * 2**-0.5`` on strided
views rather than ``2x2`` matmuls -- so amplitudes stay elementwise identical
to the fallback up to floating-point summation order, and measurements (one
inverse-CDF draw through the shared :class:`~repro.quantum.rng.QuantumRng`)
land on the same outcomes for the same seed.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.quantum.backend import QuantumBackend, register_backend
from repro.quantum.rng import QuantumRng


class NumpyQuantumBackend(QuantumBackend):
    """Batched, vectorized implementation (preferred by ``auto``)."""

    name = "numpy"

    # ------------------------------------------------------------------ #
    def basis_state(self, dim: int, index: int = 0) -> np.ndarray:
        state = np.zeros(dim, dtype=complex)
        state[index] = 1.0
        return state

    def uniform_state(self, dim: int, size: int) -> np.ndarray:
        state = np.zeros(dim, dtype=complex)
        state[:size] = 1 / math.sqrt(size)
        return state

    def state_from_amplitudes(
        self, amplitudes: Sequence[complex], dim: int
    ) -> np.ndarray:
        return np.asarray(amplitudes, dtype=complex).copy().reshape(dim)

    def copy_state(self, state: np.ndarray) -> np.ndarray:
        return state.copy()

    def amplitude_list(self, state: np.ndarray) -> List[complex]:
        return state.tolist()

    # ------------------------------------------------------------------ #
    def as_mask(self, flags: Sequence[bool], dim: int) -> np.ndarray:
        mask = np.zeros(dim, dtype=bool)
        flags = np.asarray(flags, dtype=bool)
        mask[: flags.shape[0]] = flags
        return mask

    def as_value_table(self, values: Sequence[float]) -> np.ndarray:
        return np.asarray(values, dtype=float)

    def threshold_mask(
        self, table: np.ndarray, threshold: float, maximize: bool, dim: int
    ) -> np.ndarray:
        mask = np.zeros(dim, dtype=bool)
        if maximize:
            mask[: table.shape[0]] = table > threshold
        else:
            mask[: table.shape[0]] = table < threshold
        return mask

    # ------------------------------------------------------------------ #
    def hadamard_all(self, state: np.ndarray, num_qubits: int) -> np.ndarray:
        inv = 1 / math.sqrt(2)
        for qubit in range(num_qubits):
            stride = 1 << qubit
            pairs = state.reshape(-1, 2, stride)
            a = pairs[:, 0, :].copy()
            b = pairs[:, 1, :]
            pairs[:, 0, :] = (a + b) * inv
            pairs[:, 1, :] = (a - b) * inv
        return state

    def apply_single_qubit_gate(
        self, state: np.ndarray, gate, qubit: int, num_qubits: int
    ) -> np.ndarray:
        g00, g01 = complex(gate[0][0]), complex(gate[0][1])
        g10, g11 = complex(gate[1][0]), complex(gate[1][1])
        stride = 1 << qubit
        pairs = state.reshape(-1, 2, stride)
        a = pairs[:, 0, :].copy()
        b = pairs[:, 1, :].copy()
        pairs[:, 0, :] = g00 * a + g01 * b
        pairs[:, 1, :] = g10 * a + g11 * b
        return state

    def apply_unitary(self, state: np.ndarray, unitary) -> np.ndarray:
        matrix = np.asarray(
            [[complex(value) for value in row] for row in unitary], dtype=complex
        )
        state[:] = matrix @ state
        return state

    def phase_flip(self, state: np.ndarray, mask: np.ndarray) -> np.ndarray:
        state[mask] = -state[mask]
        return state

    def diffusion(self, state: np.ndarray, size: int) -> np.ndarray:
        mean = state[:size].sum() / size
        state[:size] = 2 * mean - state[:size]
        state[size:] = -state[size:]
        return state

    # ------------------------------------------------------------------ #
    def probabilities(self, state: np.ndarray) -> np.ndarray:
        return state.real**2 + state.imag**2

    def probability_list(self, state: np.ndarray) -> List[float]:
        return self.probabilities(state).tolist()

    def basis_probability(self, state: np.ndarray, index: int) -> float:
        value = state[index]
        return float(value.real * value.real + value.imag * value.imag)

    def norm(self, state: np.ndarray) -> float:
        return float(np.sqrt(self.probabilities(state).sum()))

    def masked_probability(self, state: np.ndarray, mask: np.ndarray) -> float:
        return float(self.probabilities(state)[mask].sum())

    def sample_index(self, probabilities: np.ndarray, rng: QuantumRng) -> int:
        cumulative = np.cumsum(probabilities)
        draw = rng.random() * cumulative[-1]
        index = int(np.searchsorted(cumulative, draw, side="right"))
        return min(index, cumulative.shape[0] - 1)

    # ------------------------------------------------------------------ #
    def uniform_matrix(self, rows: int, dim: int, size: int) -> np.ndarray:
        matrix = np.zeros((rows, dim), dtype=complex)
        matrix[:, :size] = 1 / math.sqrt(size)
        return matrix

    def reset_uniform_rows(
        self, matrix: np.ndarray, rows: Sequence[int], size: int
    ) -> np.ndarray:
        rows = list(rows)
        matrix[rows, :] = 0.0
        matrix[rows, :size] = 1 / math.sqrt(size)
        return matrix

    def grover_step_rows(
        self,
        matrix: np.ndarray,
        masks: Sequence[np.ndarray],
        rows: Sequence[int],
        size: int,
    ) -> np.ndarray:
        for row in rows:
            state = matrix[row]
            mask = masks[row]
            state[mask] = -state[mask]
            mean = state[:size].sum() / size
            state[:size] = 2 * mean - state[:size]
            state[size:] = -state[size:]
        return matrix

    def row_probabilities(self, matrix: np.ndarray, row: int) -> np.ndarray:
        return self.probabilities(matrix[row])


register_backend(NumpyQuantumBackend())
