"""Ablation -- the Eq. (1) parameter choices of the Theorem 1.1 algorithm.

DESIGN.md calls out three design choices inherited from the paper:

* the skeleton-set size ``r = n^{2/5} D^{-1/5}`` (and with it the hop bound
  ``ℓ = n log n / r``),
* the shortcut parameter ``k = sqrt(D)`` used by the overlay, and
* the accuracy parameter ``ε`` (profile constant here).

This benchmark perturbs each knob independently around the paper's value on a
fixed workload and records the measured round charge and approximation ratio,
showing the trade-off each parameter controls:

* shrinking ``r`` makes the hop bound ``ℓ`` (and the toolkit cost) blow up,
  while growing ``r`` inflates the overlay and the per-invocation cost --
  the paper's value sits near the measured minimum;
* ``k`` trades Algorithm-4 cost (``|S|·k``) against Algorithm-5 cost
  (``|S|/k·D``);
* smaller ``ε`` tightens the ratio at the price of proportionally more rounds.
"""

from __future__ import annotations

import dataclasses
import math

from conftest import run_once

from repro.analysis import render_table
from repro.congest import Network
from repro.core import AlgorithmParameters, ParameterProfile, quantum_weighted_diameter
from repro.graphs import low_diameter_expander

HEADERS = [
    "ablation",
    "r (skeleton)",
    "hop bound l",
    "k",
    "eps",
    "measured rounds",
    "approx ratio",
]


def _network():
    return Network(low_diameter_expander(40, degree=6, max_weight=20, seed=6))


def _run(network, parameters, label):
    result = quantum_weighted_diameter(network, seed=9, parameters=parameters)
    return [
        label,
        round(parameters.skeleton_size, 2),
        parameters.hop_bound,
        parameters.shortcut_k,
        parameters.epsilon,
        result.total_rounds,
        f"{result.approximation_ratio:.3f}",
    ]


def _sweep():
    network = _network()
    n = network.num_nodes
    diameter_d = network.unweighted_diameter()
    log_n = max(2.0, math.log2(n))
    baseline = AlgorithmParameters.for_network(network, profile=ParameterProfile.FAST)

    rows = [_run(network, baseline, "paper choice (Eq. 1)")]

    # --- skeleton size r (hop bound follows l = n log n / r) --------------- #
    for factor, label in ((0.4, "r / 2.5"), (2.5, "r * 2.5")):
        r = max(1.0, baseline.skeleton_size * factor)
        params = dataclasses.replace(
            baseline,
            skeleton_size=r,
            hop_bound=max(1, math.ceil(n * log_n / r)),
        )
        rows.append(_run(network, params, f"skeleton size {label}"))

    # --- shortcut parameter k ---------------------------------------------- #
    for k, label in ((1, "k = 1"), (max(1, int(4 * math.sqrt(diameter_d))), "k = 4*sqrt(D)")):
        params = dataclasses.replace(baseline, shortcut_k=k)
        rows.append(_run(network, params, f"shortcut {label}"))

    # --- accuracy epsilon --------------------------------------------------- #
    params = dataclasses.replace(baseline, epsilon=0.25)
    rows.append(_run(network, params, "eps = 0.25 (tighter)"))
    params = dataclasses.replace(baseline, epsilon=1.0)
    rows.append(_run(network, params, "eps = 1.0 (looser)"))

    return rows


def test_parameter_ablation(benchmark, record_artifact):
    rows = run_once(benchmark, _sweep)
    table = render_table(
        HEADERS,
        rows,
        title="Ablation: perturbing the Eq. (1) parameters around the paper's choice",
    )
    record_artifact("ablation_parameters", table)

    baseline_rounds = rows[0][5]
    by_label = {row[0]: row for row in rows}

    # Every configuration still meets its own (1 + eps)^2 guarantee.
    for row in rows:
        guarantee = (1 + row[4]) ** 2
        assert float(row[6]) <= guarantee + 1e-9

    # Shrinking the skeleton (larger hop bound) must cost more rounds than the
    # paper's choice; the paper's choice stays within a factor ~3 of the best
    # configuration found by the sweep.
    assert by_label["skeleton size r / 2.5"][5] > baseline_rounds
    cheapest = min(row[5] for row in rows)
    assert baseline_rounds <= 3 * cheapest

    # A tighter epsilon costs more rounds than a looser one.
    assert by_label["eps = 0.25 (tighter)"][5] > by_label["eps = 1.0 (looser)"][5]
