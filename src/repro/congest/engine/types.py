"""Result types shared by every CONGEST execution engine.

These used to live in :mod:`repro.congest.simulator`; they moved here when
the simulator grew pluggable engines so that engine implementations can
import them without importing the facade.  The facade re-exports them, so
``from repro.congest.simulator import RoundReport`` keeps working.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.congest.algorithm import NodeContext
from repro.congest.message import Message

__all__ = [
    "RoundReport",
    "ShardRoundCharges",
    "SimulationResult",
    "RoundLimitExceeded",
    "encode_result_value",
    "decode_result_value",
]


# --------------------------------------------------------------------------- #
# Value codec for result serialization.
#
# Protocol outputs are plain Python values (ints, floats including ``inf``,
# strings, tuples, lists, dicts keyed by node ids), but JSON cannot carry
# them faithfully: object keys must be strings, ``Infinity`` is not valid
# JSON, arrays erase the list/tuple distinction.  The codec below wraps the
# ambiguous cases in small tagged objects so that
# ``decode(json.loads(json.dumps(encode(v)))) == v`` holds *bit-identically*
# -- the contract the service-layer result cache relies on.
# --------------------------------------------------------------------------- #

_TAG = "__repro__"


def encode_result_value(value: Any, path: str = "$") -> Any:
    """Encode ``value`` into JSON-safe structures (see module comment)."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        # repr round-trips every finite float exactly; float("inf") /
        # float("-inf") / float("nan") cover the non-finite reprs.
        return {_TAG: "float", "v": repr(value)}
    if isinstance(value, tuple):
        return {_TAG: "tuple", "v": [encode_result_value(x, f"{path}[{i}]") for i, x in enumerate(value)]}
    if isinstance(value, list):
        return [encode_result_value(x, f"{path}[{i}]") for i, x in enumerate(value)]
    if isinstance(value, dict):
        return {
            _TAG: "dict",
            "v": [
                [encode_result_value(k, f"{path}.key"), encode_result_value(v, f"{path}[{k!r}]")]
                for k, v in value.items()
            ],
        }
    if isinstance(value, frozenset):
        return {_TAG: "frozenset", "v": sorted((encode_result_value(x, path) for x in value), key=repr)}
    if isinstance(value, set):
        return {_TAG: "set", "v": sorted((encode_result_value(x, path) for x in value), key=repr)}
    raise TypeError(
        f"cannot serialize {type(value).__name__} at {path}: simulation "
        f"results must be built from None/bool/int/float/str/tuple/list/"
        f"dict/set values to round-trip through the result cache"
    )


def decode_result_value(payload: Any) -> Any:
    """Inverse of :func:`encode_result_value`."""
    if payload is None or isinstance(payload, (bool, int, str)):
        return payload
    if isinstance(payload, float):  # pragma: no cover - floats arrive tagged
        return payload
    if isinstance(payload, list):
        return [decode_result_value(x) for x in payload]
    if isinstance(payload, dict):
        tag = payload.get(_TAG)
        if tag == "float":
            return float(payload["v"])
        if tag == "tuple":
            return tuple(decode_result_value(x) for x in payload["v"])
        if tag == "dict":
            return {
                decode_result_value(k): decode_result_value(v)
                for k, v in payload["v"]
            }
        if tag == "set":
            return {decode_result_value(x) for x in payload["v"]}
        if tag == "frozenset":
            return frozenset(decode_result_value(x) for x in payload["v"])
        raise ValueError(f"unknown serialization tag {tag!r}")
    raise ValueError(f"cannot decode serialized payload of type {type(payload).__name__}")


def _values_equal(a: Any, b: Any) -> bool:
    """``a == b`` coerced to a plain bool.

    Outputs are arbitrary protocol values; some (numpy arrays) overload
    ``__eq__`` element-wise, where boolean coercion -- or the comparison
    itself, e.g. on mismatched shapes -- raises.  Such values count as equal
    only when the comparison succeeds and every element agrees; a raising
    comparison is a disagreement, never an escaping error.
    """
    try:
        result = a == b
    except Exception:
        return False
    if isinstance(result, bool):
        return result
    try:
        return bool(result)
    except (TypeError, ValueError):
        all_equal = getattr(result, "all", None)
        if all_equal is None:
            return False
        try:
            return bool(all_equal())
        except Exception:
            return False


class RoundLimitExceeded(RuntimeError):
    """Raised when a protocol does not terminate within the round limit."""


@dataclass
class RoundReport:
    """Accounting of a single protocol execution.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds executed (messages delivered).
    congested_rounds:
        Round count adjusted for bandwidth: each round is charged
        ``max_edge ceil(bits / B)`` sub-rounds (at least 1 if any message was
        sent, and 1 for an idle round that still advanced the clock).
    total_messages:
        Total number of messages delivered over the whole execution.
    total_bits:
        Total number of payload bits delivered.
    max_message_bits:
        Largest single message observed.
    protocol:
        Name of the protocol that produced this report.

    Every execution engine must produce *bit-identical* reports for the same
    protocol on the same network -- the differential tests in
    ``tests/congest/test_engine_differential.py`` enforce this, because all
    round-complexity numbers quoted in the benchmarks are read off these
    reports.
    """

    rounds: int = 0
    congested_rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    protocol: str = ""

    def merge_sequential(self, other: "RoundReport") -> "RoundReport":
        """Combine with a report of a protocol run *after* this one."""
        return RoundReport(
            rounds=self.rounds + other.rounds,
            congested_rounds=self.congested_rounds + other.congested_rounds,
            total_messages=self.total_messages + other.total_messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            protocol=f"{self.protocol}+{other.protocol}" if self.protocol else other.protocol,
        )

    @staticmethod
    def sequential(reports: List["RoundReport"]) -> "RoundReport":
        """Combine a list of reports run one after another."""
        combined = RoundReport()
        for report in reports:
            combined = combined.merge_sequential(report)
        return combined

    def to_json(self) -> Dict[str, Any]:
        """A JSON-safe dict that :meth:`from_json` restores bit-identically."""
        return {
            "rounds": self.rounds,
            "congested_rounds": self.congested_rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "protocol": self.protocol,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RoundReport":
        """Restore a report produced by :meth:`to_json`."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"RoundReport.from_json expects a dict, got {type(payload).__name__}"
            )
        fields = {}
        for name in ("rounds", "congested_rounds", "total_messages", "total_bits", "max_message_bits"):
            value = payload.get(name, 0)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"RoundReport field {name!r} must be an int, got {value!r}")
            fields[name] = value
        protocol = payload.get("protocol", "")
        if not isinstance(protocol, str):
            raise ValueError(f"RoundReport field 'protocol' must be a str, got {protocol!r}")
        return cls(protocol=protocol, **fields)


@dataclass(frozen=True)
class ShardRoundCharges:
    """One shard's contribution to a single round's :class:`RoundReport`.

    The sharded engine accounts each round per shard -- over the messages the
    shard's nodes *sent* (each directed edge has a unique sender, so the
    per-edge bit sums never straddle shards) -- and merges the partials in
    stable shard order.  Because shards are contiguous slices of the node
    order, that merge reproduces the sparse engine's single-pass accounting
    bit for bit: totals add, maxima take the maximum, and the first
    strict-bandwidth violation (in shard order, then local first-message
    order) is exactly the edge the sparse engine would have raised on.

    Attributes
    ----------
    messages / bits / max_message_bits:
        The shard's message count, payload-bit sum and largest message.
    max_edge_charge:
        ``max(1, ceil(edge_bits / B))`` over the shard's directed edges
        (only meaningful in non-strict mode).
    violation_bits:
        In strict-bandwidth mode, the bit sum of the shard's first
        over-budget edge in message order, or ``None``.
    """

    messages: int = 0
    bits: int = 0
    max_message_bits: int = 0
    max_edge_charge: int = 1
    violation_bits: Optional[int] = None

    @staticmethod
    def merge_into(
        report: "RoundReport",
        partials: Iterable[Optional["ShardRoundCharges"]],
        protocol: str,
        bandwidth: int,
    ) -> int:
        """Fold one round's per-shard partials (in shard order) into ``report``.

        Returns the round's ``max_edge_charge`` (the congestion-adjusted cost
        of the round); raises the strict-bandwidth :class:`ValueError` --
        with exactly the sparse engine's message text -- on the first partial
        carrying a violation.  ``None`` entries stand for shards that sent
        nothing and contribute nothing.  Both sharded execution modes
        (in-process shard-serial and worker-retained, where the partials
        arrive over a pipe) merge through this one helper, so the
        bit-identical accounting cannot drift between them.
        """
        max_edge_charge = 1
        for charges in partials:
            if charges is None or not charges.messages:
                continue
            if charges.violation_bits is not None:
                raise ValueError(
                    f"protocol '{protocol}' exceeded the bandwidth: "
                    f"{charges.violation_bits} bits on one edge in one "
                    f"round (B={bandwidth})"
                )
            report.total_messages += charges.messages
            report.total_bits += charges.bits
            if charges.max_message_bits > report.max_message_bits:
                report.max_message_bits = charges.max_message_bits
            if charges.max_edge_charge > max_edge_charge:
                max_edge_charge = charges.max_edge_charge
        return max_edge_charge

    @classmethod
    def from_messages(
        cls,
        sized_messages: List[Tuple[Message, int]],
        bandwidth: int,
        strict: bool,
    ) -> "ShardRoundCharges":
        """Account one shard's sized out-messages exactly like sparse does."""
        messages = 0
        bits_total = 0
        max_bits = 0
        edge_bits: Dict[Tuple[int, int], int] = {}
        for message, bits in sized_messages:
            messages += 1
            bits_total += bits
            if bits > max_bits:
                max_bits = bits
            key = (message.sender, message.receiver)
            edge_bits[key] = edge_bits.get(key, 0) + bits
        max_edge_charge = 1
        violation: Optional[int] = None
        for bits in edge_bits.values():
            if bits > bandwidth:
                if strict:
                    violation = bits
                    break
                charge = math.ceil(bits / bandwidth)
                if charge > max_edge_charge:
                    max_edge_charge = charge
        return cls(
            messages=messages,
            bits=bits_total,
            max_message_bits=max_bits,
            max_edge_charge=max_edge_charge,
            violation_bits=violation,
        )


@dataclass
class SimulationResult:
    """Outputs of all nodes plus the execution's round report."""

    outputs: Dict[int, Any]
    report: RoundReport
    contexts: Dict[int, NodeContext] = field(default_factory=dict)

    def output_of(self, node: int) -> Any:
        """Convenience accessor for a single node's output."""
        return self.outputs[node]

    def unique_output(self) -> Any:
        """Return the common output when all nodes agree; raise otherwise.

        Matches the paper's success criterion: "we say an algorithm computes
        the diameter/radius if all nodes output the correct answer".

        Agreement is decided by *equality* of the outputs, not by their
        ``repr``: two distinct values can share a repr (two objects whose
        ``__repr__`` collide) and equal values can have distinct reprs
        (``1`` vs ``True``), so deduplicating on ``repr`` mis-groups both.
        """
        distinct: List[Any] = []
        for value in self.outputs.values():
            if not any(_values_equal(value, seen) for seen in distinct):
                distinct.append(value)
        if len(distinct) != 1:
            raise ValueError(
                f"nodes disagree on the output ({len(distinct)} distinct values)"
            )
        return distinct[0]

    def to_json(self) -> Dict[str, Any]:
        """A JSON-safe dict that :meth:`from_json` restores bit-identically.

        Only ``outputs`` and ``report`` are serialized: ``contexts`` hold
        live :class:`NodeContext` objects (per-node memory plus simulator
        plumbing) and intentionally do not round-trip -- a deserialized
        result carries empty contexts.  The service layer therefore returns
        context-free results on *every* path, cold or cached, so cache hits
        are indistinguishable from fresh runs.
        """
        return {
            "outputs": encode_result_value(self.outputs, "$.outputs"),
            "report": self.report.to_json(),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "SimulationResult":
        """Restore a result produced by :meth:`to_json` (empty contexts)."""
        if not isinstance(payload, dict) or "outputs" not in payload or "report" not in payload:
            raise ValueError(
                "SimulationResult.from_json expects a dict with 'outputs' and 'report'"
            )
        outputs = decode_result_value(payload["outputs"])
        if not isinstance(outputs, dict):
            raise ValueError(
                f"serialized outputs must decode to a dict, got {type(outputs).__name__}"
            )
        return cls(outputs=outputs, report=RoundReport.from_json(payload["report"]))
