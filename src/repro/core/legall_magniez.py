"""Round-cost models for the Le Gall-Magniez quantum algorithms (unweighted case).

Table 1 compares this paper's weighted algorithm against Le Gall and
Magniez's quantum algorithms for the *unweighted* diameter and radius:

* exact / ``(3/2 - ε)``-approximate unweighted diameter and radius in
  ``Õ(sqrt(n·D))`` rounds, and
* a ``3/2``-approximation of the diameter in ``Õ((n·D)^{1/3} + D)`` rounds.

Together with Theorem 1.2 of the paper (the ``Ω̃(n^{2/3})`` lower bound for
weighted graphs with ``D = Θ(log n)``), these formulas exhibit the separation
between weighted and unweighted diameter/radius in the quantum CONGEST model.
Re-implementing the full Le Gall-Magniez machinery is outside the paper's own
scope (it is cited, not reproved), so these rows of Table 1 are represented
by explicit cost formulas -- the same way the paper itself uses them; see
DESIGN.md ("Substitutions").  A small polylog factor makes the formulas
comparable with the *measured* congestion-adjusted rounds of the simulated
protocols, which also carry their own log factors.
"""

from __future__ import annotations

import math

__all__ = [
    "legall_magniez_unweighted_diameter_rounds",
    "legall_magniez_unweighted_radius_rounds",
    "legall_magniez_three_halves_diameter_rounds",
    "quantum_eccentricity_rounds",
]


def _polylog(num_nodes: int) -> float:
    """The polylog factor attached to every ``Õ``-style formula here."""
    return max(1.0, math.log2(max(2, num_nodes)))


def legall_magniez_unweighted_diameter_rounds(
    num_nodes: int, unweighted_diameter: float
) -> float:
    """``Õ(sqrt(n·D))`` -- exact unweighted diameter [Le Gall-Magniez, PODC 2018]."""
    n = max(2, num_nodes)
    d = max(1.0, unweighted_diameter)
    return math.sqrt(n * d) * _polylog(n)


def legall_magniez_unweighted_radius_rounds(
    num_nodes: int, unweighted_diameter: float
) -> float:
    """``Õ(sqrt(n·D))`` -- exact unweighted radius [Le Gall-Magniez, PODC 2018]."""
    return legall_magniez_unweighted_diameter_rounds(num_nodes, unweighted_diameter)


def legall_magniez_three_halves_diameter_rounds(
    num_nodes: int, unweighted_diameter: float
) -> float:
    """``Õ((n·D)^{1/3} + D)`` -- 3/2-approximate unweighted diameter."""
    n = max(2, num_nodes)
    d = max(1.0, unweighted_diameter)
    return ((n * d) ** (1 / 3) + d) * _polylog(n)


def quantum_eccentricity_rounds(num_nodes: int, unweighted_diameter: float) -> float:
    """``Θ̃(sqrt(n))`` -- evaluating one node's eccentricity quantumly.

    This is the primitive whose cost (lower bound by Elkin et al., upper
    bound within the Le Gall-Magniez framework) makes the naive
    "Grover over all nodes" approach cost ``Θ̃(n)`` rounds, motivating the
    skeleton-set construction of Section 3 (see the paper's introduction).
    """
    n = max(2, num_nodes)
    return math.sqrt(n) * _polylog(n) + max(1.0, unweighted_diameter)
