"""Edge contraction used by Lemma 4.3 of the paper.

Lemma 4.3 relates the diameter/radius of a weighted graph ``(G, w)`` to that
of the graph ``G'`` obtained by *contracting every edge of weight 1*:

    ``D_{G'} <= D_G <= D_{G'} + n``     and     ``R_{G'} <= R_G <= R_{G'} + n``.

The lower-bound gadgets in Section 4 are analysed on the contracted graph
(Figures 3 and 4, Table 2), so we need a faithful contraction routine:
endpoints of a contracted edge are merged, incident edges follow the merged
node, and parallel edges keep only the lowest weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["ContractionResult", "contract_edges", "contract_unit_weight_edges"]


@dataclass
class ContractionResult:
    """The outcome of contracting a set of edges.

    Attributes
    ----------
    graph:
        The contracted graph.  Each node of the contracted graph is the
        *representative* (smallest original label) of its merged class.
    representative:
        Mapping from every original node to the representative of the merged
        super-node that contains it.
    classes:
        Mapping from each representative to the sorted list of original nodes
        merged into it.
    """

    graph: WeightedGraph
    representative: Dict[int, int]
    classes: Dict[int, List[int]] = field(default_factory=dict)

    def super_node_of(self, original_node: int) -> int:
        """Return the contracted node that contains ``original_node``."""
        return self.representative[original_node]


class _UnionFind:
    """Minimal union-find with path compression used by the contraction."""

    def __init__(self, elements) -> None:
        self._parent = {element: element for element in elements}

    def find(self, element: int) -> int:
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        # Keep the smaller label as the root so representatives are stable.
        if root_b < root_a:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a


def contract_edges(
    graph: WeightedGraph, should_contract: Callable[[int, int, int], bool]
) -> ContractionResult:
    """Contract every edge ``(u, v, w)`` for which ``should_contract`` is true.

    Contraction merges the two endpoints; after all merges, edges between
    distinct super-nodes are kept with the minimum weight among the parallel
    originals, and edges internal to a super-node disappear.
    """
    union = _UnionFind(graph.nodes)
    for u, v, w in graph.edges():
        if should_contract(u, v, w):
            union.union(u, v)

    representative = {node: union.find(node) for node in graph.nodes}
    classes: Dict[int, List[int]] = {}
    for node, rep in representative.items():
        classes.setdefault(rep, []).append(node)
    for members in classes.values():
        members.sort()

    contracted = WeightedGraph(nodes=classes.keys())
    best_weight: Dict[tuple, int] = {}
    for u, v, w in graph.edges():
        ru, rv = representative[u], representative[v]
        if ru == rv:
            continue
        key = (ru, rv) if ru < rv else (rv, ru)
        if key not in best_weight or w < best_weight[key]:
            best_weight[key] = w
    for (ru, rv), w in best_weight.items():
        contracted.add_edge(ru, rv, w)

    return ContractionResult(
        graph=contracted, representative=representative, classes=classes
    )


def contract_unit_weight_edges(graph: WeightedGraph) -> ContractionResult:
    """Contract all edges of weight exactly 1, as required by Lemma 4.3."""
    return contract_edges(graph, lambda u, v, w: w == 1)
