"""Tests for the exact shortest-path algorithms (cross-checked against networkx)."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.graphs import (
    WeightedGraph,
    all_pairs_distances,
    bellman_ford,
    bounded_distance_sssp,
    bounded_hop_distances,
    dijkstra,
    path_graph,
    random_weighted_graph,
    shortest_path,
)

INF = math.inf


class TestDijkstra:
    def test_triangle(self, triangle_graph):
        distances = dijkstra(triangle_graph, 0)
        assert distances == {0: 0, 1: 3, 2: 7}

    def test_source_distance_zero(self, weighted_random_graph):
        assert dijkstra(weighted_random_graph, 0)[0] == 0

    def test_unknown_source_raises(self, triangle_graph):
        with pytest.raises(KeyError):
            dijkstra(triangle_graph, 999)

    def test_disconnected_gives_inf(self):
        graph = WeightedGraph(nodes=[0, 1, 2])
        graph.add_edge(0, 1, 2)
        distances = dijkstra(graph, 0)
        assert distances[2] == INF

    def test_matches_networkx(self, weighted_random_graph):
        ours = dijkstra(weighted_random_graph, 0)
        theirs = nx.single_source_dijkstra_path_length(
            weighted_random_graph.to_networkx(), 0
        )
        for node, value in theirs.items():
            assert ours[node] == value

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_networkx_multiple_seeds(self, seed):
        graph = random_weighted_graph(num_nodes=20, max_weight=30, seed=seed)
        ours = dijkstra(graph, 0)
        theirs = nx.single_source_dijkstra_path_length(graph.to_networkx(), 0)
        assert all(ours[node] == value for node, value in theirs.items())


class TestBellmanFord:
    def test_matches_dijkstra(self, weighted_random_graph):
        assert bellman_ford(weighted_random_graph, 0) == dijkstra(
            weighted_random_graph, 0
        )

    def test_zero_hops(self, small_path):
        distances = bellman_ford(small_path, 0, max_hops=0)
        assert distances[0] == 0
        assert all(distances[v] == INF for v in small_path.nodes if v != 0)

    def test_hop_limited_matches_reference(self, weighted_random_graph):
        for hops in (1, 2, 3):
            relaxed = bellman_ford(weighted_random_graph, 0, max_hops=hops)
            reference = bounded_hop_distances(weighted_random_graph, 0, hops)
            assert relaxed == reference

    def test_unknown_source_raises(self, small_path):
        with pytest.raises(KeyError):
            bellman_ford(small_path, 42)


class TestBoundedHopDistances:
    def test_one_hop_is_edge_weight(self, triangle_graph):
        distances = bounded_hop_distances(triangle_graph, 0, 1)
        assert distances == {0: 0, 1: 3, 2: 10}

    def test_two_hops_finds_cheaper_route(self, triangle_graph):
        distances = bounded_hop_distances(triangle_graph, 0, 2)
        assert distances[2] == 7

    def test_enough_hops_equals_true_distance(self, weighted_random_graph):
        n = weighted_random_graph.num_nodes
        assert bounded_hop_distances(weighted_random_graph, 0, n - 1) == dijkstra(
            weighted_random_graph, 0
        )

    def test_monotone_in_hop_budget(self, weighted_random_graph):
        previous = bounded_hop_distances(weighted_random_graph, 0, 1)
        for hops in range(2, 6):
            current = bounded_hop_distances(weighted_random_graph, 0, hops)
            assert all(current[v] <= previous[v] for v in weighted_random_graph.nodes)
            previous = current

    def test_negative_hops_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            bounded_hop_distances(triangle_graph, 0, -1)


class TestBoundedDistanceSssp:
    def test_threshold_cuts_far_nodes(self, small_path):
        distances = bounded_distance_sssp(small_path, 0, 5)
        assert distances[0] == 0
        assert distances[1] == 2
        assert distances[2] == 5
        assert distances[3] == INF
        assert distances[4] == INF

    def test_large_threshold_is_exact(self, weighted_random_graph):
        exact = dijkstra(weighted_random_graph, 0)
        bounded = bounded_distance_sssp(weighted_random_graph, 0, 10**9)
        assert bounded == exact


class TestAllPairs:
    def test_symmetry(self, weighted_random_graph):
        table = all_pairs_distances(weighted_random_graph)
        nodes = weighted_random_graph.nodes
        for u in nodes[:8]:
            for v in nodes[:8]:
                assert table[u][v] == table[v][u]

    def test_triangle_inequality(self, weighted_random_graph):
        table = all_pairs_distances(weighted_random_graph)
        nodes = weighted_random_graph.nodes[:8]
        for u in nodes:
            for v in nodes:
                for w in nodes:
                    assert table[u][v] <= table[u][w] + table[w][v] + 1e-9

    def test_matches_networkx(self, weighted_random_graph):
        table = all_pairs_distances(weighted_random_graph)
        theirs = dict(
            nx.all_pairs_dijkstra_path_length(weighted_random_graph.to_networkx())
        )
        for u, row in theirs.items():
            for v, value in row.items():
                assert table[u][v] == value


class TestShortestPath:
    def test_path_endpoints(self, weighted_random_graph):
        distance, path = shortest_path(weighted_random_graph, 0, 5)
        assert path[0] == 0
        assert path[-1] == 5

    def test_path_length_matches_distance(self, weighted_random_graph):
        distance, path = shortest_path(weighted_random_graph, 0, 7)
        total = sum(
            weighted_random_graph.weight(a, b) for a, b in zip(path, path[1:])
        )
        assert total == distance

    def test_source_equals_target(self, triangle_graph):
        distance, path = shortest_path(triangle_graph, 1, 1)
        assert distance == 0
        assert path == [1]

    def test_unreachable(self):
        graph = WeightedGraph(nodes=[0, 1])
        distance, path = shortest_path(graph, 0, 1)
        assert distance == INF
        assert path == []

    def test_unknown_nodes_raise(self, triangle_graph):
        with pytest.raises(KeyError):
            shortest_path(triangle_graph, 0, 99)
        with pytest.raises(KeyError):
            shortest_path(triangle_graph, 99, 0)

    def test_path_graph_order(self):
        graph = path_graph(6)
        _, path = shortest_path(graph, 0, 5)
        assert path == [0, 1, 2, 3, 4, 5]
