"""Tests for the power-law fitting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import fit_power_law, fit_two_parameter_power_law


class TestSinglePredictor:
    def test_exact_power_law_recovered(self):
        xs = [10, 20, 40, 80, 160]
        ys = [3 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.constant == pytest.approx(3, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_power_law(self):
        rng = np.random.default_rng(0)
        xs = np.linspace(10, 500, 30)
        ys = 2 * xs**0.67 * np.exp(rng.normal(0, 0.05, size=30))
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.67, abs=0.08)
        assert fit.r_squared > 0.95

    def test_predict(self):
        fit = fit_power_law([1, 2, 4, 8], [5, 10, 20, 40])
        assert fit.predict(16) == pytest.approx(80, rel=1e-6)

    def test_constant_data(self):
        fit = fit_power_law([1, 2, 4], [7, 7, 7])
        assert fit.exponent == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [3])
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, -2])


class TestTwoPredictors:
    def test_exact_two_parameter_law(self):
        ns = [100, 100, 400, 400, 1600, 1600, 100, 1600]
        ds = [4, 16, 4, 16, 4, 16, 64, 64]
        ys = [0.7 * n**0.9 * d**0.3 for n, d in zip(ns, ds)]
        fit = fit_two_parameter_power_law(ns, ds, ys)
        assert fit.exponents[0] == pytest.approx(0.9, abs=1e-9)
        assert fit.exponents[1] == pytest.approx(0.3, abs=1e-9)
        assert fit.constant == pytest.approx(0.7, rel=1e-9)

    def test_predict_two_parameters(self):
        ns = [10, 20, 40, 10, 40]
        ds = [2, 2, 2, 8, 8]
        ys = [n * d for n, d in zip(ns, ds)]
        fit = fit_two_parameter_power_law(ns, ds, ys)
        assert fit.predict(30, 4) == pytest.approx(120, rel=1e-6)
        with pytest.raises(ValueError):
            fit.predict(30)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_two_parameter_power_law([1, 2], [1], [1, 2])
