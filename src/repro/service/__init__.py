"""Simulation-as-a-service: batch jobs, result cache, metrics.

The service layer turns the simulator into a request/response system:

>>> from repro.service import RunSpec, GraphSpec, SimulationService
>>> service = SimulationService()
>>> spec = RunSpec(
...     protocol="bellman-ford-sssp",
...     graph=GraphSpec(generator="path", params={"n": 8}),
...     params={"source": 0},
... )
>>> result = service.run(spec)          # or submit() -> JobHandle
>>> result.report.round_count
7

Everything here is stdlib-only; the engines and backends a spec selects are
resolved through the existing registries via :mod:`repro.runtime`.
"""

from repro.service.cache import CacheStats, ResultCache, cache_key, semantic_key
from repro.service.jobs import JobHandle, JobState, JobStatus, SimulationService
from repro.service.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from repro.service.protocols import (
    ProtocolSpec,
    RunOptions,
    available_protocols,
    get_protocol,
    register_protocol,
)
from repro.service.spec import GraphSpec, RunSpec, available_generators

__all__ = [
    "CacheStats",
    "Counter",
    "GraphSpec",
    "Histogram",
    "JobHandle",
    "JobState",
    "JobStatus",
    "MetricsRegistry",
    "ProtocolSpec",
    "ResultCache",
    "RunOptions",
    "RunSpec",
    "SimulationService",
    "available_generators",
    "available_protocols",
    "cache_key",
    "get_protocol",
    "parse_exposition",
    "register_protocol",
    "semantic_key",
]
