"""Differential tests: every registered quantum backend must agree.

The backend contract (see :mod:`repro.quantum.backend`) is *observational
identity*: for the same seed, every backend produces the same oracle-query
counts, the same iteration schedules, the same measured outcomes, and
amplitudes equal up to floating-point summation order.  These tests run the
full quantum stack under each registered backend via :func:`force_backend`
and compare everything.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro.quantum import (
    StateVector,
    available_backends,
    force_backend,
    get_backend,
    grover_search,
    quantum_maximum,
    quantum_minimum,
)
from repro.quantum.backend import BACKEND_ENV_VAR, QuantumBackend, register_backend
from repro.quantum.grover import grover_search_unknown

BACKENDS = available_backends()
AMPLITUDE_TOL = 1e-12


def pairs(results):
    first = results[0]
    return [(first, other) for other in results[1:]]


class TestRegistry:
    def test_python_backend_always_registered(self):
        assert "python" in BACKENDS

    def test_get_backend_by_name(self):
        for name in BACKENDS:
            assert get_backend(name).name == name

    def test_get_backend_passes_instances_through(self):
        backend = get_backend("python")
        assert get_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown quantum backend"):
            get_backend("tensor-network")

    def test_force_backend_pins_selection(self):
        with force_backend("python") as backend:
            assert backend.name == "python"
            assert get_backend().name == "python"

    def test_force_backend_restores_previous(self):
        default = get_backend().name
        with force_backend("python"):
            pass
        assert get_backend().name == default

    def test_env_var_selects_backend(self):
        code = (
            "from repro.quantum import get_backend; print(get_backend().name)"
        )
        env = dict(os.environ, PYTHONPATH="src", **{BACKEND_ENV_VAR: "python"})
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, cwd=os.getcwd(),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "python"

    def test_scipy_name_resolves_for_quantum(self):
        # REPRO_BACKEND is shared with the CSR kernels; asking the quantum
        # registry for "scipy" must resolve to a dense backend, not fail.
        resolved = get_backend("scipy").name
        assert resolved in ("numpy", "python")

    def test_register_backend_overwrites(self):
        class Fake(QuantumBackend):
            name = "fake-for-test"

        try:
            register_backend(Fake())
            assert "fake-for-test" in available_backends()
            assert isinstance(get_backend("fake-for-test"), Fake)
        finally:
            from repro.quantum.backend import _REGISTRY

            _REGISTRY.pop("fake-for-test", None)


@pytest.mark.skipif(len(BACKENDS) < 2, reason="only one backend registered")
class TestDifferential:
    def test_grover_identical_outcomes_and_queries(self):
        for seed in range(8):
            results = []
            for name in BACKENDS:
                with force_backend(name):
                    results.append(grover_search(64, lambda x: x % 9 == 2, rng=seed))
            for first, other in pairs(results):
                assert other.outcome == first.outcome
                assert other.is_marked == first.is_marked
                assert other.oracle_queries == first.oracle_queries
                assert other.iterations == first.iterations
                assert abs(other.success_probability - first.success_probability) < AMPLITUDE_TOL

    def test_bbht_identical_schedules(self):
        for seed in range(8):
            results = []
            for name in BACKENDS:
                with force_backend(name):
                    results.append(
                        grover_search_unknown(48, lambda x: x in (5, 31), rng=seed)
                    )
            for first, other in pairs(results):
                assert other.outcome == first.outcome
                assert other.oracle_queries == first.oracle_queries
                assert other.iterations == first.iterations

    def test_minmax_identical_results(self):
        values_rng = random.Random(17)
        values = [values_rng.randrange(10**6) for _ in range(150)]
        for seed in range(4):
            for search in (quantum_maximum, quantum_minimum):
                results = []
                for name in BACKENDS:
                    with force_backend(name):
                        results.append(search(values, rng=seed))
                for first, other in pairs(results):
                    assert other.index == first.index
                    assert other.value == first.value
                    assert other.oracle_queries == first.oracle_queries
                    assert other.threshold_updates == first.threshold_updates
                    assert other.is_exact == first.is_exact

    def test_statevector_amplitudes_match(self):
        registers = []
        for name in BACKENDS:
            with force_backend(name):
                state = StateVector(5, rng=3).apply_hadamard_all()
                state.apply_phase_oracle(lambda x: x % 7 == 1)
                state.apply_diffusion()
                state.apply_single_qubit_gate(
                    [[0, 1], [1, 0]], 2
                )
                registers.append(state)
        for first, other in pairs(registers):
            for a, b in zip(first.amplitudes, other.amplitudes):
                assert abs(a - b) < AMPLITUDE_TOL

    def test_statevector_measurements_match(self):
        outcomes = []
        for name in BACKENDS:
            with force_backend(name):
                state = StateVector(6, rng=123).apply_hadamard_all()
                outcomes.append([state.sample(30), state.measure()])
        for first, other in pairs(outcomes):
            assert other == first

    def test_explicit_backend_argument_beats_force(self):
        with force_backend("python"):
            for name in BACKENDS:
                state = StateVector(2, backend=name)
                assert state.backend.name == name
