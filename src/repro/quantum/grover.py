"""Grover search / amplitude amplification with oracle-query counting.

Lemma 3.1 of the paper (Le Gall-Magniez's distributed quantum optimization)
is, at its heart, amplitude amplification run by the leader over a black-box
Evaluation procedure: if the good elements carry amplitude mass ``ρ``, then
``O(sqrt(log(1/δ)/ρ))`` invocations of Setup/Evaluation suffice to find a good
element with probability ``1 - δ``.

This module provides the sequential version of that primitive on an explicit
search domain:

* :func:`grover_search` runs the textbook Grover iteration on a state vector,
  counting oracle queries, and returns the measured element.
* :func:`grover_iterations` gives the optimal iteration count
  ``floor(pi/4 * sqrt(N/M))``.
* :func:`amplitude_amplification_success_probability` gives the exact success
  probability after ``t`` iterations, ``sin^2((2t+1) theta)`` with
  ``sin^2(theta) = M/N``, which the tests compare against the simulated state.

When the number of marked elements is unknown, :func:`grover_search_unknown`
uses the standard exponential-guessing schedule (Boyer-Brassard-Høyer-Tapp),
which is also what Dürr-Høyer minimum finding calls internally.

The searches execute on raw backend amplitude buffers
(:mod:`repro.quantum.backend`), and the marking *predicate is evaluated once
per basis state per search* to precompute a marked mask -- each of the
``O(sqrt(N))`` Grover iterations then applies the mask without re-invoking
the predicate.  ``oracle_queries`` still counts phase-oracle *applications*
(the quantum query complexity), exactly as before.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.quantum.backend import get_backend
from repro.quantum.rng import RandomSource, as_quantum_rng

__all__ = [
    "GroverResult",
    "grover_iterations",
    "amplitude_amplification_success_probability",
    "grover_search",
    "grover_search_unknown",
    "exhaustive_oracle",
]


@dataclass
class GroverResult:
    """Outcome of one Grover search run.

    Attributes
    ----------
    outcome:
        The measured basis state (an index into the search domain).
    is_marked:
        Whether the measured state satisfies the oracle.
    oracle_queries:
        Number of times the phase oracle was applied.
    iterations:
        Number of Grover iterations performed.
    success_probability:
        The exact probability (from the final state vector) of measuring a
        marked element, recorded before measurement.
    """

    outcome: int
    is_marked: bool
    oracle_queries: int
    iterations: int
    success_probability: float


def exhaustive_oracle(values: Sequence, predicate: Callable) -> Callable[[int], bool]:
    """Build a basis-state oracle from a value table and a predicate on values."""
    table = [bool(predicate(value)) for value in values]

    def oracle(index: int) -> bool:
        return index < len(table) and table[index]

    return oracle


def grover_iterations(domain_size: int, num_marked: int) -> int:
    """The optimal Grover iteration count ``floor(pi/4 sqrt(N/M))``.

    Returns 0 when every element is marked (measuring the uniform
    superposition already succeeds) and raises if nothing is marked.
    """
    if domain_size < 1:
        raise ValueError("domain_size must be positive")
    if num_marked < 1:
        raise ValueError("num_marked must be positive")
    if num_marked >= domain_size:
        return 0
    theta = math.asin(math.sqrt(num_marked / domain_size))
    return max(0, math.floor(math.pi / (4 * theta)))


def amplitude_amplification_success_probability(
    domain_size: int, num_marked: int, iterations: int
) -> float:
    """Exact success probability ``sin^2((2t + 1) * theta)`` after ``t`` iterations."""
    if num_marked == 0:
        return 0.0
    if num_marked >= domain_size:
        return 1.0
    theta = math.asin(math.sqrt(num_marked / domain_size))
    return math.sin((2 * iterations + 1) * theta) ** 2


def _num_qubits_for(domain_size: int) -> int:
    return max(1, math.ceil(math.log2(domain_size)))


def _marked_flags(domain_size: int, dim: int, oracle: Callable[[int], bool]) -> list:
    """Evaluate the predicate once per domain element (padding stays False)."""
    flags = [False] * dim
    for state in range(domain_size):
        flags[state] = bool(oracle(state))
    return flags


def grover_search(
    domain_size: int,
    oracle: Callable[[int], bool],
    num_marked: Optional[int] = None,
    rng: Optional[RandomSource] = None,
    backend: Optional[str] = None,
) -> GroverResult:
    """Run Grover search over ``{0, ..., domain_size - 1}``.

    Parameters
    ----------
    domain_size:
        Size of the search domain (need not be a power of two).
    oracle:
        Predicate marking the good elements (evaluated once per domain
        element to precompute the marked mask).
    num_marked:
        If known, the number of marked elements; the optimal iteration count
        is used.  If ``None`` the count is taken from the precomputed mask
        (the tests use this mode); for the unknown-count quantum schedule use
        :func:`grover_search_unknown`.
    rng:
        Measurement randomness (seed / ``random.Random`` / NumPy generator /
        :class:`~repro.quantum.rng.QuantumRng`).
    backend:
        Optional backend override (defaults to registry selection).

    Returns
    -------
    GroverResult
    """
    if domain_size < 1:
        raise ValueError("domain_size must be positive")
    rng = as_quantum_rng(rng)
    engine = get_backend(backend)
    num_qubits = _num_qubits_for(domain_size)
    dim = 2**num_qubits
    flags = _marked_flags(domain_size, dim, oracle)
    if num_marked is None:
        num_marked = sum(flags)
    if num_marked == 0:
        # Nothing to find; measuring the uniform superposition gives an
        # unmarked element and zero queries are spent.
        outcome = rng.randrange(domain_size)
        return GroverResult(
            outcome=outcome,
            is_marked=False,
            oracle_queries=0,
            iterations=0,
            success_probability=0.0,
        )

    mask = engine.as_mask(flags, dim)
    state = engine.uniform_state(dim, domain_size)

    iterations = grover_iterations(domain_size, num_marked)
    queries = 0
    for _ in range(iterations):
        engine.phase_flip(state, mask)
        queries += 1
        engine.diffusion(state, domain_size)

    success_probability = float(engine.masked_probability(state, mask))
    outcome = engine.sample_index(engine.probabilities(state), rng)
    return GroverResult(
        outcome=outcome,
        is_marked=flags[outcome],
        oracle_queries=queries,
        iterations=iterations,
        success_probability=success_probability,
    )


def grover_search_unknown(
    domain_size: int,
    oracle: Callable[[int], bool],
    rng: Optional[RandomSource] = None,
    growth: float = 6 / 5,
    max_rounds: Optional[int] = None,
    backend: Optional[str] = None,
) -> GroverResult:
    """Grover search when the number of marked elements is unknown.

    Implements the Boyer-Brassard-Høyer-Tapp exponential schedule: repeatedly
    pick a random iteration count below a growing ceiling, run that many
    Grover iterations, and check the measured element classically.  The
    expected total number of oracle queries is ``O(sqrt(N/M))``; if no element
    is marked the search gives up after ``O(sqrt(N))`` total queries.

    The classical check of each candidate is counted as one additional oracle
    query, matching the usual query-complexity accounting.
    """
    if domain_size < 1:
        raise ValueError("domain_size must be positive")
    rng = as_quantum_rng(rng)
    engine = get_backend(backend)
    num_qubits = _num_qubits_for(domain_size)
    dim = 2**num_qubits
    flags = _marked_flags(domain_size, dim, oracle)
    mask = engine.as_mask(flags, dim)

    ceiling = 1.0
    total_queries = 0
    rounds = 0
    query_budget = math.ceil(9 * math.sqrt(domain_size)) + 10
    if max_rounds is None:
        max_rounds = 4 * math.ceil(math.log2(domain_size) + 1) + 10
    last_outcome = 0
    while rounds < max_rounds and total_queries <= query_budget:
        rounds += 1
        iterations = rng.randrange(int(ceiling)) if int(ceiling) >= 1 else 0
        state = engine.uniform_state(dim, domain_size)
        for _ in range(iterations):
            engine.phase_flip(state, mask)
            engine.diffusion(state, domain_size)
        total_queries += iterations
        outcome = engine.sample_index(engine.probabilities(state), rng)
        if outcome >= domain_size:
            # Padding state measured (domain not a power of two); re-draw
            # uniformly from the domain as the classical check candidate.
            outcome = rng.randrange(domain_size)
        last_outcome = outcome
        total_queries += 1  # classical verification query
        if flags[outcome]:
            success_probability = float(engine.masked_probability(state, mask))
            return GroverResult(
                outcome=outcome,
                is_marked=True,
                oracle_queries=total_queries,
                iterations=rounds,
                success_probability=success_probability,
            )
        ceiling = min(growth * ceiling, math.sqrt(domain_size))
    return GroverResult(
        outcome=last_outcome,
        is_marked=flags[last_outcome],
        oracle_queries=total_queries,
        iterations=rounds,
        success_probability=0.0,
    )
