"""A dense state-vector quantum register.

This is a deliberately small simulator: a register of ``k`` qubits is a
``2^k`` complex vector; single- and two-qubit gates are applied by reshaping,
and measurement samples from the squared amplitudes.  It is sufficient to run
the Grover / Dürr-Høyer primitives on the search-domain sizes the benchmarks
exercise (up to a few thousand basis states) and to verify their success
probabilities exactly.

Conventions
-----------
* Little-endian: qubit 0 is the least significant bit of the basis-state
  index.
* Basis states are integers ``0 .. 2^k - 1``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["StateVector", "measure_all", "sample_counts"]


class StateVector:
    """A register of ``num_qubits`` qubits held as a dense complex vector.

    Parameters
    ----------
    num_qubits:
        Number of qubits (the vector has ``2**num_qubits`` entries).
    rng:
        Optional :class:`numpy.random.Generator` used for measurements;
        defaults to a fresh deterministic generator (seed 0).
    """

    def __init__(
        self, num_qubits: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        if num_qubits < 1:
            raise ValueError("a register needs at least one qubit")
        if num_qubits > 24:
            raise ValueError(
                f"{num_qubits} qubits exceeds the dense-simulation limit of 24"
            )
        self._num_qubits = num_qubits
        self._amplitudes = np.zeros(2**num_qubits, dtype=complex)
        self._amplitudes[0] = 1.0
        self._rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return self._num_qubits

    @property
    def dimension(self) -> int:
        """Dimension of the state space (``2**num_qubits``)."""
        return 2**self._num_qubits

    @property
    def amplitudes(self) -> np.ndarray:
        """A copy of the amplitude vector."""
        return self._amplitudes.copy()

    def probability(self, basis_state: int) -> float:
        """Probability of observing ``basis_state`` on a full measurement."""
        return float(abs(self._amplitudes[basis_state]) ** 2)

    def probabilities(self) -> np.ndarray:
        """Probabilities of every basis state."""
        return np.abs(self._amplitudes) ** 2

    def norm(self) -> float:
        """The 2-norm of the state (1 for any valid state)."""
        return float(np.linalg.norm(self._amplitudes))

    # ------------------------------------------------------------------ #
    # State preparation
    # ------------------------------------------------------------------ #
    def reset(self, basis_state: int = 0) -> "StateVector":
        """Reset the register to a computational basis state."""
        if not 0 <= basis_state < self.dimension:
            raise ValueError(f"basis state {basis_state} out of range")
        self._amplitudes[:] = 0
        self._amplitudes[basis_state] = 1.0
        return self

    def set_amplitudes(self, amplitudes: Sequence[complex]) -> "StateVector":
        """Load an explicit amplitude vector (it is normalised automatically)."""
        vector = np.asarray(amplitudes, dtype=complex)
        if vector.shape != (self.dimension,):
            raise ValueError(
                f"expected {self.dimension} amplitudes, got {vector.shape}"
            )
        norm = np.linalg.norm(vector)
        if norm < 1e-12:
            raise ValueError("cannot normalise the zero vector")
        self._amplitudes = vector / norm
        return self

    def prepare_uniform(self, domain_size: Optional[int] = None) -> "StateVector":
        """Prepare the uniform superposition over the first ``domain_size`` states.

        With ``domain_size=None`` the superposition covers the full register
        (the usual ``H^{\\otimes k}|0>``).  A restricted domain models the
        paper's Setup procedure, which superposes over an arbitrary finite set
        ``X`` whose size need not be a power of two.
        """
        size = self.dimension if domain_size is None else domain_size
        if not 1 <= size <= self.dimension:
            raise ValueError(f"domain_size {size} out of range")
        self._amplitudes[:] = 0
        self._amplitudes[:size] = 1 / math.sqrt(size)
        return self

    # ------------------------------------------------------------------ #
    # Gates
    # ------------------------------------------------------------------ #
    def apply_single_qubit_gate(self, gate: np.ndarray, qubit: int) -> "StateVector":
        """Apply a 2x2 unitary to one qubit."""
        if gate.shape != (2, 2):
            raise ValueError("single-qubit gate must be 2x2")
        if not 0 <= qubit < self._num_qubits:
            raise ValueError(f"qubit index {qubit} out of range")
        k = self._num_qubits
        # Reshape so the target qubit becomes its own axis.
        tensor = self._amplitudes.reshape([2] * k)
        axis = k - 1 - qubit  # little-endian: qubit 0 is the last axis
        tensor = np.moveaxis(tensor, axis, 0)
        shape = tensor.shape
        tensor = gate @ tensor.reshape(2, -1)
        tensor = np.moveaxis(tensor.reshape(shape), 0, axis)
        self._amplitudes = tensor.reshape(-1)
        return self

    def apply_hadamard_all(self) -> "StateVector":
        """Apply a Hadamard to every qubit."""
        from repro.quantum.gates import HADAMARD

        for qubit in range(self._num_qubits):
            self.apply_single_qubit_gate(HADAMARD, qubit)
        return self

    def apply_phase_oracle(self, predicate: Callable[[int], bool]) -> "StateVector":
        """Flip the sign of every basis state ``x`` with ``predicate(x)`` true.

        This is the standard phase oracle ``O_f |x> = (-1)^{f(x)} |x>`` used by
        Grover search.
        """
        marked = np.fromiter(
            (1.0 if predicate(state) else 0.0 for state in range(self.dimension)),
            dtype=float,
            count=self.dimension,
        )
        self._amplitudes = self._amplitudes * (1 - 2 * marked)
        return self

    def apply_diffusion(self, domain_size: Optional[int] = None) -> "StateVector":
        """Apply the Grover diffusion operator ``2|s><s| - I``.

        ``|s>`` is the uniform superposition over the first ``domain_size``
        basis states (the whole register by default).  Amplitudes outside the
        domain are negated, matching the reflection about ``|s>`` restricted
        to the domain's span plus its orthogonal complement.
        """
        size = self.dimension if domain_size is None else domain_size
        if not 1 <= size <= self.dimension:
            raise ValueError(f"domain_size {size} out of range")
        mean = self._amplitudes[:size].mean()
        self._amplitudes[:size] = 2 * mean - self._amplitudes[:size]
        self._amplitudes[size:] = -self._amplitudes[size:]
        return self

    def apply_unitary(self, unitary: np.ndarray) -> "StateVector":
        """Apply an arbitrary full-register unitary (for small registers/tests)."""
        unitary = np.asarray(unitary, dtype=complex)
        if unitary.shape != (self.dimension, self.dimension):
            raise ValueError(
                f"unitary must be {self.dimension}x{self.dimension}, got {unitary.shape}"
            )
        self._amplitudes = unitary @ self._amplitudes
        return self

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def measure(self) -> int:
        """Measure all qubits; collapses the state and returns the outcome."""
        probabilities = self.probabilities()
        probabilities = probabilities / probabilities.sum()
        outcome = int(self._rng.choice(self.dimension, p=probabilities))
        self.reset(outcome)
        return outcome

    def sample(self, shots: int) -> List[int]:
        """Sample ``shots`` outcomes without collapsing the state."""
        probabilities = self.probabilities()
        probabilities = probabilities / probabilities.sum()
        return [
            int(value)
            for value in self._rng.choice(self.dimension, size=shots, p=probabilities)
        ]

    def copy(self) -> "StateVector":
        """Return an independent copy sharing the same RNG seed stream."""
        clone = StateVector(self._num_qubits, rng=self._rng)
        clone._amplitudes = self._amplitudes.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateVector(num_qubits={self._num_qubits})"


def measure_all(state: StateVector) -> int:
    """Functional wrapper around :meth:`StateVector.measure`."""
    return state.measure()


def sample_counts(state: StateVector, shots: int) -> Dict[int, int]:
    """Sample ``shots`` measurements and return a histogram of outcomes."""
    counts: Dict[int, int] = {}
    for outcome in state.sample(shots):
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts
