"""Unit tests for the frozen CSR snapshot and its cache."""

from __future__ import annotations


import pytest

from repro.graphs import WeightedGraph, random_weighted_graph
from repro.kernels import CSRGraph, dijkstra_csr, diameter_csr, eccentricities_csr, radius_csr

pytestmark = pytest.mark.kernels


class TestConstruction:
    def test_arrays_mirror_adjacency(self, triangle_graph):
        csr = CSRGraph.from_graph(triangle_graph)
        assert csr.nodes == tuple(triangle_graph.nodes)
        assert csr.num_nodes == 3
        assert csr.num_directed_edges == 6
        for node in triangle_graph.nodes:
            i = csr.index[node]
            start, end = csr.indptr[i], csr.indptr[i + 1]
            slice_view = {
                csr.nodes[csr.indices[k]]: csr.weights[k] for k in range(start, end)
            }
            assert slice_view == dict(triangle_graph.incident_edges(node))

    def test_empty_graph(self):
        csr = CSRGraph.from_graph(WeightedGraph())
        assert csr.num_nodes == 0
        assert csr.indptr == [0]
        assert csr.indices == []

    def test_single_node(self):
        csr = CSRGraph.from_graph(WeightedGraph(nodes=[42]))
        assert csr.nodes == (42,)
        assert csr.indptr == [0, 0]
        assert csr.degree(0) == 0

    def test_isolated_nodes_between_connected_ones(self):
        graph = WeightedGraph(nodes=[0, 1, 2, 3])
        graph.add_edge(0, 3, 5)
        csr = CSRGraph.from_graph(graph)
        assert csr.degree(csr.index[1]) == 0
        assert csr.degree(csr.index[2]) == 0
        assert csr.degree(csr.index[0]) == 1

    def test_non_contiguous_labels(self):
        graph = WeightedGraph()
        graph.add_edge(10, 99, 7)
        graph.add_edge(99, -5, 2)
        csr = CSRGraph.from_graph(graph)
        assert set(csr.nodes) == {10, 99, -5}
        distances = dijkstra_csr(graph, 10)
        assert distances == {10: 0, 99: 7, -5: 9}


class TestCache:
    def test_snapshot_is_cached(self, weighted_random_graph):
        first = CSRGraph.from_graph(weighted_random_graph)
        second = CSRGraph.from_graph(weighted_random_graph)
        assert first is second

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g: g.add_edge(0, 1, 17),
            lambda g: g.add_node(10_000),
            lambda g: g.remove_edge(*next(iter([(u, v) for u, v, _ in g.edges()]))),
            lambda g: g.remove_node(next(iter(g.nodes))),
        ],
        ids=["add_edge", "add_node", "remove_edge", "remove_node"],
    )
    def test_every_mutation_invalidates(self, mutate):
        graph = random_weighted_graph(12, average_degree=3.0, max_weight=9, seed=2)
        before = CSRGraph.from_graph(graph)
        mutate(graph)
        after = CSRGraph.from_graph(graph)
        assert after is not before

    def test_distances_follow_mutation(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 4)
        graph.add_edge(1, 2, 4)
        assert dijkstra_csr(graph, 0)[2] == 8
        graph.add_edge(0, 2, 3)
        assert dijkstra_csr(graph, 0)[2] == 3
        graph.remove_edge(0, 2)
        assert dijkstra_csr(graph, 0)[2] == 8

    def test_reduction_memo_follows_mutation(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 4)
        graph.add_edge(1, 2, 4)
        assert diameter_csr(graph) == 8
        assert radius_csr(graph) == 4  # served from the memoised vector
        graph.add_edge(0, 2, 1)
        assert diameter_csr(graph) == 4
        assert eccentricities_csr(graph) == {0: 4, 1: 4, 2: 4}

    def test_copies_do_not_share_snapshots(self, triangle_graph):
        original = CSRGraph.from_graph(triangle_graph)
        clone = triangle_graph.copy()
        assert CSRGraph.from_graph(clone) is not original


class TestWithWeights:
    def test_shares_topology(self, triangle_graph):
        csr = CSRGraph.from_graph(triangle_graph)
        doubled = csr.with_weights([w * 2 for w in csr.weights])
        assert doubled.indptr is csr.indptr
        assert doubled.indices is csr.indices
        assert doubled.nodes is csr.nodes
        assert doubled.weights == [w * 2 for w in csr.weights]
        # Original snapshot untouched.
        assert csr.weights != doubled.weights

    def test_kernel_on_reweighted_snapshot(self, small_path):
        csr = CSRGraph.from_graph(small_path)
        unit = csr.with_weights([1] * len(csr.weights))
        distances = dijkstra_csr(unit, 0)
        assert distances == {i: i for i in range(5)}

    def test_length_mismatch_rejected(self, triangle_graph):
        csr = CSRGraph.from_graph(triangle_graph)
        with pytest.raises(ValueError):
            csr.with_weights([1, 2])
