"""Network topology and CONGEST configuration.

A :class:`Network` wraps a connected :class:`~repro.graphs.WeightedGraph`
(the communication topology *and* the weighted input graph of the distance
problem -- in the paper the input graph is the network itself, with each edge
weight initially known to both endpoints) together with a
:class:`CongestConfig` fixing the bandwidth ``B``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.graphs.properties import unweighted_diameter
from repro.graphs.weighted_graph import WeightedGraph

__all__ = ["CongestConfig", "Network", "ShardView"]


@dataclass(frozen=True)
class CongestConfig:
    """Bandwidth configuration of a CONGEST network.

    Attributes
    ----------
    bandwidth_words:
        Number of ``O(log n)``-bit words a single per-edge, per-round message
        may carry.  The paper's model allows ``O(log n)`` bits, i.e. a small
        constant number of words; the default of 2 words matches the usual
        convention that a message holds one node identifier plus one distance
        value.
    word_bits_override:
        If set, the size of a word in bits; otherwise the word size is
        ``ceil(log2 n)`` rounded up to at least 8 bits.
    strict_bandwidth:
        When ``True`` the simulator raises if any single message exceeds the
        per-round budget.  When ``False`` oversized messages are accepted but
        charged extra rounds in the congestion-adjusted round count.
    """

    bandwidth_words: int = 2
    word_bits_override: int | None = None
    strict_bandwidth: bool = False

    def word_bits(self, num_nodes: int) -> int:
        """Size of one word in bits for an ``n``-node network."""
        if self.word_bits_override is not None:
            return self.word_bits_override
        return max(8, math.ceil(math.log2(max(2, num_nodes))))

    def bandwidth_bits(self, num_nodes: int) -> int:
        """Per-edge, per-round bandwidth ``B`` in bits."""
        return self.bandwidth_words * self.word_bits(num_nodes)


@dataclass(frozen=True, eq=False)
class ShardView:
    """A contiguous, CSR-aware partition of a network's node set.

    Shard ``s`` owns the contiguous slice ``nodes[starts[s]:starts[s+1]]`` of
    the network's node order (the same order the CSR snapshot and every
    execution engine iterate in), so concatenating per-shard node lists in
    shard order reproduces the global node order exactly -- the property the
    sharded engine's deterministic merge relies on.  Shard boundaries are
    placed to balance ``1 + degree`` per node (computed from the frozen CSR
    snapshot), i.e. the per-shard deliver/compute work, not just node counts.

    Attributes
    ----------
    num_shards:
        Number of shards ``S`` (each non-empty, so ``S <= n``).
    starts:
        ``S + 1`` cut positions into the node order.
    shards:
        Per-shard node labels, in node order.
    shard_by_node:
        Mapping from node label to owning shard index.
    boundary_edges:
        Per shard, the frozen set of *outgoing* directed cross-shard edges
        ``(u, v)`` with ``u`` in the shard and ``v`` outside it.  Built once
        per topology.  Messages on exactly these edges cross shard
        boundaries, so the sharded engine pays the per-message routing
        lookup only for shards whose set is non-empty (a shard with no
        boundary edges bulk-routes its whole out-buffer to itself), and the
        shard-scaling benchmark reports the counts.
    """

    num_shards: int
    starts: Tuple[int, ...]
    shards: Tuple[Tuple[int, ...], ...]
    shard_by_node: Dict[int, int]
    boundary_edges: Tuple[FrozenSet[Tuple[int, int]], ...]

    def shard_of(self, node: int) -> int:
        """Index of the shard owning ``node``."""
        return self.shard_by_node[node]

    @property
    def cross_shard_edge_count(self) -> int:
        """Total number of directed cross-shard edges."""
        return sum(len(edges) for edges in self.boundary_edges)

    def worker_blocks(self, num_workers: int) -> Tuple[Tuple[int, ...], ...]:
        """Contiguous shard blocks for ``num_workers`` sharded-engine workers.

        Workers own *contiguous* runs of shards (ceil split, so every worker
        gets at least one shard and blocks cover the shard range in order).
        Contiguity is what lets the worker-retention protocol reassemble the
        sparse engine's global delivery order from ``pre + local + post``
        segments: every shard outside a worker's block is entirely before or
        entirely after it in sender order.
        """
        if not isinstance(num_workers, int) or isinstance(num_workers, bool):
            raise ValueError(f"num_workers must be an int, got {num_workers!r}")
        if not 1 <= num_workers <= self.num_shards:
            raise ValueError(
                f"num_workers must be between 1 and the shard count "
                f"({self.num_shards}), got {num_workers}"
            )
        per_worker = -(-self.num_shards // num_workers)  # ceil
        return tuple(
            tuple(range(start, min(start + per_worker, self.num_shards)))
            for start in range(0, self.num_shards, per_worker)
        )

    def cross_worker_edge_count(self, num_workers: int) -> int:
        """Directed edges crossing a *worker block* boundary.

        With intra-shard retention only these edges' messages travel through
        the coordinator pipes; edges between two shards of the same worker
        block stay worker-local.  The shard-scaling benchmark reports this
        next to :attr:`cross_shard_edge_count` to make the retention win
        legible.
        """
        blocks = self.worker_blocks(num_workers)
        worker_of_shard = {
            shard: worker for worker, ids in enumerate(blocks) for shard in ids
        }
        return sum(
            1
            for shard, edges in enumerate(self.boundary_edges)
            for (_u, v) in edges
            if worker_of_shard[self.shard_by_node[v]] != worker_of_shard[shard]
        )

    @classmethod
    def build(cls, graph: WeightedGraph, num_shards: int) -> "ShardView":
        """Partition ``graph``'s node order into ``num_shards`` shards."""
        from repro.kernels.csr import CSRGraph

        csr = CSRGraph.from_graph(graph)
        n = csr.num_nodes
        if not isinstance(num_shards, int) or isinstance(num_shards, bool):
            raise ValueError(f"num_shards must be an int, got {num_shards!r}")
        if not 1 <= num_shards <= n:
            raise ValueError(
                f"num_shards must be between 1 and the node count ({n}), "
                f"got {num_shards}"
            )
        indptr = csr.indptr
        loads = [1 + indptr[i + 1] - indptr[i] for i in range(n)]
        total = sum(loads)

        starts = [0]
        acc = 0
        cursor = 0
        for shard in range(num_shards):
            remaining = num_shards - shard - 1
            target = total * (shard + 1) / num_shards
            acc += loads[cursor]
            end = cursor + 1  # every shard owns at least one node
            while end < n - remaining and acc + loads[end] <= target:
                acc += loads[end]
                end += 1
            starts.append(end)
            cursor = end
        starts[-1] = n

        shard_index = [0] * n
        shards = []
        for shard in range(num_shards):
            lo, hi = starts[shard], starts[shard + 1]
            shards.append(tuple(csr.nodes[lo:hi]))
            for i in range(lo, hi):
                shard_index[i] = shard

        boundary: List[set] = [set() for _ in range(num_shards)]
        indices = csr.indices
        for i in range(n):
            shard = shard_index[i]
            for j in indices[indptr[i] : indptr[i + 1]]:
                if shard_index[j] != shard:
                    boundary[shard].add((csr.nodes[i], csr.nodes[j]))

        return cls(
            num_shards=num_shards,
            starts=tuple(starts),
            shards=tuple(shards),
            shard_by_node={
                node: shard for shard, nodes in enumerate(shards) for node in nodes
            },
            boundary_edges=tuple(frozenset(edges) for edges in boundary),
        )


class Network:
    """A CONGEST communication network over a weighted graph.

    Parameters
    ----------
    graph:
        The weighted topology.  Must be connected: the paper (and the CONGEST
        distance literature generally) assumes a connected network, since
        otherwise the diameter is infinite and no node can learn about other
        components.
    config:
        Bandwidth configuration; defaults to 2 words of ``ceil(log2 n)`` bits.

    Notes
    -----
    The same object doubles as the problem input: ``graph`` carries the edge
    weights whose induced distances define the weighted diameter and radius.
    """

    def __init__(self, graph: WeightedGraph, config: CongestConfig | None = None) -> None:
        if graph.num_nodes == 0:
            raise ValueError("a CONGEST network needs at least one node")
        if graph.num_nodes > 1 and not graph.is_connected():
            raise ValueError("the CONGEST network topology must be connected")
        self._graph = graph
        self._config = config or CongestConfig()
        self._unweighted_diameter_cache: float | None = None
        self._unit_companion_cache: tuple[int, "Network"] | None = None
        self._shard_view_cache: dict[tuple[int, int], ShardView] = {}

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> WeightedGraph:
        """The underlying weighted graph."""
        return self._graph

    @property
    def config(self) -> CongestConfig:
        """The bandwidth configuration."""
        return self._config

    @property
    def num_nodes(self) -> int:
        """Number of processors ``n``."""
        return self._graph.num_nodes

    @property
    def nodes(self) -> List[int]:
        """All node identifiers."""
        return self._graph.nodes

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """The neighbors of ``node`` in the topology."""
        return tuple(self._graph.neighbors(node))

    def edge_weight(self, u: int, v: int) -> int:
        """Weight of edge ``{u, v}`` (known initially to both endpoints)."""
        return self._graph.weight(u, v)

    def incident_weights(self, node: int) -> Dict[int, int]:
        """Mapping neighbor -> edge weight for all edges incident to ``node``."""
        return dict(self._graph.incident_edges(node))

    @property
    def bandwidth_bits(self) -> int:
        """Per-edge, per-round bandwidth ``B`` in bits."""
        return self._config.bandwidth_bits(self.num_nodes)

    @property
    def word_bits(self) -> int:
        """Size of one ``O(log n)``-bit word for this network."""
        return self._config.word_bits(self.num_nodes)

    def unweighted_diameter(self) -> float:
        """The topology's unweighted diameter ``D`` (cached)."""
        if self._unweighted_diameter_cache is None:
            if self.num_nodes == 1:
                self._unweighted_diameter_cache = 0.0
            else:
                self._unweighted_diameter_cache = float(
                    unweighted_diameter(self._graph)
                )
        return self._unweighted_diameter_cache

    def max_weight(self) -> int:
        """The maximum edge weight ``W`` (assumed globally known, as in Appendix A)."""
        return self._graph.max_weight()

    def shard_view(self, num_shards: int) -> ShardView:
        """The contiguous ``num_shards``-way partition of this network.

        Memoized per shard count and keyed by the graph's mutation counter,
        so the sharded engine's partition and cross-shard edge index are
        built once per (topology, shard count) rather than once per run;
        any topology mutation transparently invalidates the memo.
        """
        version = getattr(self._graph, "_version", None)
        if version is not None:
            cached = self._shard_view_cache.get((version, num_shards))
            if cached is not None:
                return cached
        view = ShardView.build(self._graph, num_shards)
        if version is not None:
            if any(key[0] != version for key in self._shard_view_cache):
                self._shard_view_cache = {}  # drop views of a mutated topology
            self._shard_view_cache[(version, num_shards)] = view
        return view

    def unit_weight_companion(self) -> "Network":
        """The unit-weight twin of this network (same topology and config).

        Memoized on the instance and keyed by the graph's mutation counter,
        so repeated unweighted baselines (``distributed_unweighted_apsp``,
        ``classical_eccentricity_protocol``) reuse one companion -- and hence
        one cached CSR snapshot -- instead of re-freezing a fresh graph per
        call; any topology mutation transparently invalidates the memo.
        """
        version = getattr(self._graph, "_version", None)
        cached = self._unit_companion_cache
        if cached is not None and version is not None and cached[0] == version:
            return cached[1]
        companion = Network(self._graph.with_unit_weights(), self._config)
        if version is not None:
            self._unit_companion_cache = (version, companion)
        return companion

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(n={self.num_nodes}, m={self._graph.num_edges}, "
            f"B={self.bandwidth_bits} bits)"
        )
