"""E10 -- Lemmas 4.5-4.7: approximate degree of the outer read-once formulas.

The Server-model lower bound for ``F`` and ``F'`` rests on
``deg_{1/3}(f) = Θ(sqrt(k))`` for read-once formulas (Lemma 4.6).  The
benchmark measures the 1/3-approximate degree by linear programming for

* ``OR_k`` and ``AND_k`` (the radius function's outer formula ``f'``), and
* ``AND_m ∘ OR_l`` compositions (the diameter function's outer formula ``f``),

then fits the growth against ``sqrt(k)`` and checks the measured values
dominate the Lemma 4.6 envelope used by the Theorem 4.2/4.8 assembly.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import fit_power_law, render_table
from repro.lower_bounds import (
    approximate_degree,
    approximate_degree_lower_bound_read_once,
    symmetric_approximate_degree,
)
from repro.lower_bounds.functions import compose_read_once, or_formula

HEADERS = ["formula", "variables k", "deg_{1/3} (measured)", "0.25*sqrt(k) envelope"]


def _sweep():
    rows = []
    # Symmetric families (univariate LP scales to large k).
    for k in (4, 9, 16, 25, 36, 64, 100):
        or_profile = [0.0] + [1.0] * k
        rows.append(
            [
                f"OR_{k}  (radius outer formula)",
                k,
                symmetric_approximate_degree(or_profile),
                round(approximate_degree_lower_bound_read_once(k), 2),
            ]
        )
    for k in (4, 16, 64):
        and_profile = [0.0] * k + [1.0]
        rows.append(
            [
                f"AND_{k}",
                k,
                symmetric_approximate_degree(and_profile),
                round(approximate_degree_lower_bound_read_once(k), 2),
            ]
        )
    # Read-once compositions (general LP, small k): the diameter outer formula.
    for blocks, ell in ((2, 2), (2, 3), (3, 2), (2, 4), (4, 2)):
        formula = compose_read_once("and", blocks, lambda off: or_formula(ell, off))
        k = blocks * ell
        rows.append(
            [
                f"AND_{blocks} o OR_{ell}  (diameter outer formula)",
                k,
                approximate_degree(formula.evaluate, k),
                round(approximate_degree_lower_bound_read_once(k), 2),
            ]
        )
    return rows


def test_approximate_degree_sqrt_growth(benchmark, record_artifact):
    rows = run_once(benchmark, _sweep)
    table = render_table(
        HEADERS, rows, title="Lemma 4.6: measured deg_{1/3} of read-once formulas"
    )

    or_rows = [row for row in rows if row[0].startswith("OR_")]
    fit = fit_power_law([row[1] for row in or_rows], [row[2] for row in or_rows])
    summary = (
        f"\nOR_k growth fit: deg ~ {fit.constant:.2f} * k^{fit.exponent:.2f} "
        f"(R^2 = {fit.r_squared:.3f}); Lemma 4.6 predicts exponent 0.5"
    )
    record_artifact("approx_degree", table + summary)

    # Every measured degree dominates the envelope used by the theorem.
    for row in rows:
        assert row[2] >= row[3]
    # The measured exponent is square-root-like.
    assert 0.35 <= fit.exponent <= 0.65
    assert fit.r_squared > 0.9
