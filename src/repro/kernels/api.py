"""Label-space wrappers around the CSR kernel backends.

These are the functions the rest of the library calls.  They accept either a
:class:`~repro.graphs.weighted_graph.WeightedGraph` (snapshotted through the
CSR cache) or a pre-built :class:`~repro.kernels.csr.CSRGraph`, translate node
labels to dense indices, dispatch to the selected backend, and normalise the
results back to the library's historical conventions:

* distances are plain Python ``int`` values (the graphs carry positive
  integer weights, so every finite distance is an integer), and
* unreachable nodes map to the module-level :data:`repro.graphs.shortest_paths.INFINITY`
  object itself, preserving the ``value is INFINITY`` identity checks used
  elsewhere in the library.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.kernels.backend import get_backend
from repro.kernels.csr import CSRGraph
from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "dijkstra_csr",
    "multi_source_dijkstra",
    "batched_bellman_ford",
    "all_pairs_distances_csr",
    "eccentricities_csr",
    "diameter_csr",
    "radius_csr",
]

_INF = math.inf

GraphLike = Union[WeightedGraph, CSRGraph]


def _snapshot(graph: GraphLike) -> CSRGraph:
    if isinstance(graph, CSRGraph):
        return graph
    return CSRGraph.from_graph(graph)


def _as_scalar(value: float) -> float:
    """Normalise one backend distance to ``int`` or the ``INFINITY`` object."""
    value = float(value)
    if math.isinf(value):
        return _INF
    return int(value)


def _as_dict(csr: CSRGraph, row: Sequence[float]) -> Dict[int, float]:
    if isinstance(row, list):
        # The Python backend already emits ints plus the INFINITY object.
        return dict(zip(csr.nodes, row))
    # NumPy row: fully reachable rows convert through one C-level cast; the
    # (rare) rows with unreachable nodes fall back to per-element handling so
    # the INFINITY identity is preserved.
    if len(row) and not math.isinf(row.max()):
        return dict(zip(csr.nodes, row.astype("int64").tolist()))
    return {
        node: (_INF if math.isinf(value) else int(value))
        for node, value in zip(csr.nodes, row.tolist())
    }


def _source_index(csr: CSRGraph, source: int) -> int:
    try:
        return csr.index[source]
    except KeyError:
        raise KeyError(f"source node {source} is not in the graph") from None


# ---------------------------------------------------------------------- #
# Shortest-path kernels
# ---------------------------------------------------------------------- #
def dijkstra_csr(
    graph: GraphLike, source: int, backend: Optional[str] = None
) -> Dict[int, float]:
    """Exact single-source distances; drop-in for the dict-based Dijkstra."""
    csr = _snapshot(graph)
    row = get_backend(backend).sssp(csr, _source_index(csr, source))
    return _as_dict(csr, row)


def multi_source_dijkstra(
    graph: GraphLike, sources: Sequence[int], backend: Optional[str] = None
) -> Dict[int, Dict[int, float]]:
    """Exact distances from every source in one batched pass.

    Returns ``{source: {node: distance}}``; the per-source rows are identical
    to ``dijkstra_csr`` run source by source, but the whole batch is computed
    in one kernel invocation (one heap pass on the Python backend, one
    vectorized relaxation on NumPy).
    """
    csr = _snapshot(graph)
    source_indices = [_source_index(csr, source) for source in sources]
    rows = get_backend(backend).multi_source_sssp(csr, source_indices)
    return {source: _as_dict(csr, row) for source, row in zip(sources, rows)}


def batched_bellman_ford(
    graph: GraphLike,
    sources: Sequence[int],
    max_hops: int,
    backend: Optional[str] = None,
) -> Dict[int, Dict[int, float]]:
    """Hop-bounded distances ``d^l(s, .)`` for every source in one batch.

    ``max_hops`` is the hop budget ``l`` of Section 3.1: each entry is the
    least length over paths using at most ``l`` edges.
    """
    if max_hops < 0:
        raise ValueError(f"max_hops must be non-negative, got {max_hops}")
    csr = _snapshot(graph)
    source_indices = [_source_index(csr, source) for source in sources]
    rows = get_backend(backend).bounded_hop(csr, source_indices, max_hops)
    return {source: _as_dict(csr, row) for source, row in zip(sources, rows)}


def all_pairs_distances_csr(
    graph: GraphLike, backend: Optional[str] = None
) -> Dict[int, Dict[int, float]]:
    """Exact APSP as ``{source: {node: distance}}`` via the batched kernel."""
    csr = _snapshot(graph)
    rows = get_backend(backend).all_pairs(csr)
    return {node: _as_dict(csr, row) for node, row in zip(csr.nodes, rows)}


# ---------------------------------------------------------------------- #
# Eccentricity / diameter / radius reductions
# ---------------------------------------------------------------------- #
def _eccentricity_values(
    graph: GraphLike, backend: Optional[str]
) -> Tuple[CSRGraph, List[float]]:
    csr = _snapshot(graph)
    resolved = get_backend(backend)
    # The reductions (eccentricities, diameter, radius) all need the same
    # n-entry vector; memoise it on the snapshot -- keyed per backend so the
    # differential tests still observe each backend's own computation.
    memo_key = f"api:eccentricities:{resolved.name}"
    values = csr.memo.get(memo_key)
    if values is None:
        rows = resolved.all_pairs(csr)
        values = []
        for row in rows:
            if not len(row):
                values.append(_INF)
            else:
                values.append(
                    _as_scalar(max(row) if isinstance(row, list) else row.max())
                )
        csr.memo[memo_key] = values
    return csr, values


def eccentricities_csr(
    graph: GraphLike, backend: Optional[str] = None
) -> Dict[int, float]:
    """``e(u) = max_v d(u, v)`` for every node, from one batched APSP."""
    csr, values = _eccentricity_values(graph, backend)
    return dict(zip(csr.nodes, values))


def diameter_csr(graph: GraphLike, backend: Optional[str] = None) -> float:
    """Weighted diameter ``D = max_u e(u)``; raises on an empty graph."""
    csr, values = _eccentricity_values(graph, backend)
    if not values:
        raise ValueError("diameter of an empty graph is undefined")
    return max(values)


def radius_csr(graph: GraphLike, backend: Optional[str] = None) -> float:
    """Weighted radius ``R = min_u e(u)``; raises on an empty graph."""
    csr, values = _eccentricity_values(graph, backend)
    if not values:
        raise ValueError("radius of an empty graph is undefined")
    return min(values)
