"""Algorithm 1: Bounded-Hop SSSP via weight rounding.

For a globally known source ``s``, every node ``v`` learns the approximate
bounded-hop distance ``d̃^ℓ_{G,w}(s, v)`` of Lemma 3.2 in ``Õ(ℓ/ε)`` rounds:
for each rounding level ``i`` the protocol runs one Bounded-Distance SSSP
(Algorithm 2) under the rounded weights ``w_i`` with distance bound
``(1 + 2/ε)·ℓ``, and each node keeps the best rescaled value over levels.

The level executions are sequential, exactly as in the paper's Algorithm 1;
the number of levels is ``O(log(nW/ε))`` which the ``Õ`` hides.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.congest.network import Network
from repro.congest.simulator import RoundReport
from repro.graphs.rounding import rounded_weight, rounding_levels
from repro.nanongkai.bounded_distance_sssp import bounded_distance_sssp_protocol

__all__ = [
    "bounded_hop_sssp_protocol",
    "bounded_hop_sssp_oracle",
    "rounded_incident_weights",
    "level_distance_bound",
]

_INF = math.inf


def level_distance_bound(hop_bound: int, epsilon: float) -> int:
    """The distance bound ``L = floor((1 + 2/ε)·ℓ)`` used at every level."""
    if hop_bound <= 0:
        raise ValueError(f"hop_bound must be positive, got {hop_bound}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return int(math.floor((1 + 2 / epsilon) * hop_bound))


def rounded_incident_weights(
    network: Network, hop_bound: int, epsilon: float, level: int
) -> Dict[int, Dict[int, int]]:
    """Per-node rounded incident weights ``w_i`` for one level.

    Each node can compute these locally from its incident edge weights (the
    computation is free in the CONGEST model); the structure returned here is
    handed to the simulator as pre-loaded node memory.
    """
    rounded: Dict[int, Dict[int, int]] = {}
    for node in network.nodes:
        rounded[node] = {
            neighbor: rounded_weight(weight, hop_bound, epsilon, level)
            for neighbor, weight in network.incident_weights(node).items()
        }
    return rounded


def bounded_hop_sssp_oracle(
    network: Network,
    source: int,
    hop_bound: int,
    epsilon: float,
    levels: Optional[int] = None,
) -> Dict[int, float]:
    """Sequential ground truth for Algorithm 1 via the batched CSR kernels.

    Returns exactly the per-node table the protocol converges to, computed
    without the simulator; the differential tests check the protocol against
    this oracle on every backend.
    """
    from repro.graphs.rounding import approx_bounded_hop_distances_multi

    if source not in network.graph:
        raise KeyError(f"source node {source} is not in the graph")
    if levels is None:
        levels = rounding_levels(network.graph, hop_bound, epsilon)
    table = approx_bounded_hop_distances_multi(
        network.graph, [source], hop_bound, epsilon, levels=levels
    )
    return table[source]


def bounded_hop_sssp_protocol(
    network: Network,
    source: int,
    hop_bound: int,
    epsilon: float,
    levels: Optional[int] = None,
) -> Tuple[Dict[int, float], RoundReport]:
    """Run Algorithm 1 on the simulator.

    Parameters
    ----------
    network:
        The CONGEST network (integer weights).
    source:
        The globally known source node.
    hop_bound:
        The hop bound ``ℓ``.
    epsilon:
        The accuracy parameter ``ε``.
    levels:
        Number of rounding levels; defaults to ``O(log(nW/ε))`` as in the
        paper (``log2(2nW/ε)``).

    Returns
    -------
    (distances, report)
        ``distances[v] = d̃^ℓ_{G,w}(source, v)`` (``math.inf`` when no level
        certifies an ``ℓ``-hop path), and the measured total round cost.
    """
    if levels is None:
        levels = rounding_levels(network.graph, hop_bound, epsilon)
    bound = level_distance_bound(hop_bound, epsilon)

    best: Dict[int, float] = {node: _INF for node in network.nodes}
    best[source] = 0.0
    reports: List[RoundReport] = []
    for level in range(levels):
        weights = rounded_incident_weights(network, hop_bound, epsilon, level)
        distances, report = bounded_distance_sssp_protocol(
            network, source, bound, weights=weights
        )
        reports.append(report)
        scale = epsilon * (2**level) / (2 * hop_bound)
        for node, value in distances.items():
            if math.isinf(value):
                continue
            rescaled = value * scale
            if rescaled < best[node]:
                best[node] = rescaled

    total = RoundReport.sequential(reports)
    total.protocol = "bounded-hop-sssp"
    return best, total
