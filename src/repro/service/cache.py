"""Content-addressed result cache: LRU in memory, optional JSON on disk.

The repository's memoization (CSR snapshots, BFS layerings, analytic round
charges) is keyed on a graph's *mutation counter* and therefore scoped to
one process and one live object.  The service cache keys on *content*
instead: the cache key is the SHA-256 of a canonical JSON document carrying
the graph's :meth:`~repro.graphs.WeightedGraph.content_digest`, the protocol
name and parameters, the bandwidth configuration, the per-run options and
the execution knobs (engine / backend / shards / workers).  Two different
graph objects with identical content, or the same request issued by two
different processes pointing at the same cache directory, hit the same
entry.

Engine invariance is the repository's differential contract: every engine
produces identical outputs and bit-identical round reports.  That makes a
``dense`` result *legally* servable for a ``sparse`` request -- but only for
protocols that declare ``engine_invariant`` and only when the caller opts in
(``allow_cross_engine=True``), because a future protocol could break the
contract deliberately (e.g. a randomized engine-dependent workload).
Cross-engine lookups go through a secondary index keyed on the spec minus
its execution knobs.

Entries store the *serialized* result (:meth:`SimulationResult.to_json`),
never live objects, so cache hits cannot leak mutable state between
requests and the disk format equals the wire format.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.congest.engine.types import SimulationResult
from repro.service.spec import RunSpec

__all__ = ["CacheStats", "ResultCache", "cache_key", "semantic_key"]

#: Fields of a spec that select *how* a run executes rather than *what* it
#: computes.  Engine-invariant protocols produce identical results across
#: all of them, which is what cross-engine serving exploits.
_EXECUTION_FIELDS = ("engine", "backend", "shards", "workers")


def _key_material(spec: RunSpec, graph_digest: str, semantic: bool) -> str:
    payload = spec.to_json()
    # The graph is represented by its content digest, not its spec: a
    # generator spec and the inline edge list it expands to are the same
    # cache entry.
    payload["graph"] = {"content_digest": graph_digest}
    if semantic:
        for field in _EXECUTION_FIELDS:
            payload.pop(field, None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(spec: RunSpec, graph_digest: str) -> str:
    """The exact content-addressed key for ``spec`` on the digested graph."""
    return hashlib.sha256(
        _key_material(spec, graph_digest, semantic=False).encode()
    ).hexdigest()


def semantic_key(spec: RunSpec, graph_digest: str) -> str:
    """The execution-agnostic key (spec minus engine/backend/shards/workers)."""
    return hashlib.sha256(
        _key_material(spec, graph_digest, semantic=True).encode()
    ).hexdigest()


class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache`."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.cross_engine_hits = 0
        self.disk_hits = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)


class ResultCache:
    """LRU result cache with an optional on-disk tier.

    Parameters
    ----------
    max_entries:
        In-memory LRU bound (least-recently-used entries are dropped; with a
        disk tier they remain loadable from disk).
    directory:
        Optional directory for the persistent tier; entries are written as
        ``<key>.json`` documents carrying the serialized result plus enough
        metadata (protocol, engine, graph digest) to audit the cache by hand.
    """

    def __init__(
        self,
        max_entries: int = 256,
        directory: Optional[Path] = None,
    ) -> None:
        if not isinstance(max_entries, int) or isinstance(max_entries, bool) or max_entries < 1:
            raise ValueError(
                f"max_entries must be a positive integer, got {max_entries!r}"
            )
        self._max_entries = max_entries
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        #: exact key -> serialized result document (insertion order = LRU).
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: semantic key -> exact key of one stored entry (for cross-engine).
        self._semantic_index: Dict[str, str] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        spec: RunSpec,
        graph_digest: str,
        allow_cross_engine: bool = False,
        engine_invariant: bool = True,
    ) -> Optional[Tuple[SimulationResult, bool]]:
        """Return ``(result, cross_engine)`` on a hit, ``None`` on a miss.

        ``allow_cross_engine`` additionally consults the semantic index --
        only honoured when the protocol is ``engine_invariant``.  The
        returned result is freshly deserialized on every hit, so callers can
        never mutate the cached copy.
        """
        exact = cache_key(spec, graph_digest)
        document = self._load(exact)
        if document is not None:
            with self._lock:
                self.stats.hits += 1
            return SimulationResult.from_json(document["result"]), False
        if allow_cross_engine and engine_invariant:
            semantic = semantic_key(spec, graph_digest)
            with self._lock:
                donor = self._semantic_index.get(semantic)
            document = self._load(donor) if donor is not None else None
            if document is None and self._directory is not None:
                document = self._load_disk_semantic(semantic)
            if document is not None:
                with self._lock:
                    self.stats.hits += 1
                    self.stats.cross_engine_hits += 1
                return SimulationResult.from_json(document["result"]), True
        with self._lock:
            self.stats.misses += 1
        return None

    def store(
        self, spec: RunSpec, graph_digest: str, result: SimulationResult
    ) -> str:
        """Serialize and store ``result`` under the spec's exact key."""
        exact = cache_key(spec, graph_digest)
        semantic = semantic_key(spec, graph_digest)
        document = {
            "key": exact,
            "semantic_key": semantic,
            "protocol": spec.protocol,
            "engine": spec.engine,
            "backend": spec.backend,
            "graph_digest": graph_digest,
            "spec": spec.to_json(),
            "result": result.to_json(),
        }
        with self._lock:
            self._entries[exact] = document
            self._entries.move_to_end(exact)
            self._semantic_index[semantic] = exact
            self.stats.stores += 1
            while len(self._entries) > self._max_entries:
                evicted_key, evicted = self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self._semantic_index.get(evicted["semantic_key"]) == evicted_key:
                    del self._semantic_index[evicted["semantic_key"]]
        if self._directory is not None:
            path = self._directory / f"{exact}.json"
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
            tmp.replace(path)
        return exact

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _load(self, key: Optional[str]) -> Optional[Dict[str, Any]]:
        if key is None:
            return None
        with self._lock:
            document = self._entries.get(key)
            if document is not None:
                self._entries.move_to_end(key)
                return document
        if self._directory is None:
            return None
        path = self._directory / f"{key}.json"
        if not path.is_file():
            return None
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        with self._lock:
            self.stats.disk_hits += 1
            self._entries[key] = document
            self._entries.move_to_end(key)
            self._semantic_index.setdefault(document.get("semantic_key", ""), key)
            while len(self._entries) > self._max_entries:
                evicted_key, evicted = self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self._semantic_index.get(evicted["semantic_key"]) == evicted_key:
                    del self._semantic_index[evicted["semantic_key"]]
        return document

    def _load_disk_semantic(self, semantic: str) -> Optional[Dict[str, Any]]:
        """Scan the disk tier for any entry with the given semantic key.

        Disk entries written by *other processes* are not in this process's
        semantic index; a linear scan keeps cross-process cross-engine hits
        working without a sidecar index file (cache directories are small --
        results are expensive, that is the point of caching them).
        """
        if self._directory is None:
            return None
        for path in sorted(self._directory.glob("*.json")):
            try:
                document = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if document.get("semantic_key") == semantic:
                with self._lock:
                    self.stats.disk_hits += 1
                    self._semantic_index.setdefault(semantic, document["key"])
                return document
        return None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop the in-memory tier (the disk tier, if any, is untouched)."""
        with self._lock:
            self._entries.clear()
            self._semantic_index.clear()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            entries = len(self._entries)
        return {
            "entries": entries,
            "max_entries": self._max_entries,
            "directory": str(self._directory) if self._directory else None,
            **self.stats.snapshot(),
        }
