"""Tests for the classical baselines used in the Table 1 comparisons."""

from __future__ import annotations

import pytest

from repro.congest import Network
from repro.core import (
    classical_exact_diameter,
    classical_exact_radius,
    sssp_two_approximation_diameter,
    sssp_upper_bound_radius,
)
from repro.graphs import diameter, radius, random_weighted_graph, unweighted_diameter


@pytest.fixture(scope="module")
def network():
    return Network(random_weighted_graph(num_nodes=20, max_weight=18, seed=21))


class TestExactBaselines:
    def test_diameter_value(self, network):
        result = classical_exact_diameter(network)
        assert result.value == diameter(network.graph)
        assert result.lower_bound == result.upper_bound == result.value
        assert result.rounds > 0

    def test_radius_value(self, network):
        result = classical_exact_radius(network)
        assert result.value == radius(network.graph)

    def test_unweighted_variants(self, network):
        d = classical_exact_diameter(network, weighted=False)
        assert d.value == unweighted_diameter(network.graph)

    def test_names(self, network):
        assert "diameter" in classical_exact_diameter(network).name
        assert "radius" in classical_exact_radius(network).name


class TestSsspBaselines:
    def test_two_approx_interval_contains_diameter(self, network):
        result = sssp_two_approximation_diameter(network)
        true_diameter = diameter(network.graph)
        assert result.lower_bound - 1e-9 <= true_diameter <= result.upper_bound + 1e-9
        assert result.upper_bound == 2 * result.lower_bound

    def test_two_approx_with_explicit_source(self, network):
        result = sssp_two_approximation_diameter(network, source=5)
        assert result.lower_bound <= diameter(network.graph) <= result.upper_bound

    def test_radius_upper_bound(self, network):
        result = sssp_upper_bound_radius(network)
        true_radius = radius(network.graph)
        assert true_radius <= result.value + 1e-9
        assert result.value <= 2 * true_radius + 1e-9

    def test_cheaper_than_exact(self, network):
        exact = classical_exact_diameter(network)
        approx = sssp_two_approximation_diameter(network)
        assert approx.rounds < exact.rounds
