"""CLI contract tests for ``python -m repro.lint``.

Exit codes are part of the interface CI depends on: 0 clean, 1 findings,
2 usage error (unknown rule code / missing path).
"""

from __future__ import annotations

import pytest

from repro.lint.cli import main
from repro.lint.reporters import parse_report

pytestmark = pytest.mark.lint


@pytest.fixture
def tree(tmp_path):
    """A tiny src tree with one clean module and one REP102 violation."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("import math\n\nVALUE = math.pi\n")
    (pkg / "bad.py").write_text("import numpy\n")
    return tmp_path


def test_exit_zero_on_clean_file(tree, capsys):
    assert main([str(tree / "src" / "repro" / "clean.py")]) == 0
    out = capsys.readouterr().out
    assert "clean: 0 findings in 1 files checked" in out


def test_exit_one_with_findings(tree, capsys):
    assert main([str(tree)]) == 1
    out = capsys.readouterr().out
    assert "REP102" in out
    assert "1 finding in 2 files checked" in out


def test_select_can_mask_the_violation(tree):
    assert main([str(tree), "--select", "REP101"]) == 0
    assert main([str(tree), "--select", "REP101,REP102"]) == 1
    assert main([str(tree), "--ignore", "REP102"]) == 0


def test_unknown_rule_code_is_a_usage_error(tree, capsys):
    assert main([str(tree), "--select", "REP999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(tree, capsys):
    assert main([str(tree / "does-not-exist")]) == 2
    assert "no such file or directory" in capsys.readouterr().err


def test_json_format_emits_the_machine_report(tree, capsys):
    assert main([str(tree), "--format", "json"]) == 1
    payload = parse_report(capsys.readouterr().out)
    assert payload["files_checked"] == 2
    assert payload["findings_total"] == 1
    assert payload["counts"] == {"REP102": 1}
    finding = payload["findings"][0]
    assert finding["code"] == "REP102"
    assert finding["path"].endswith("bad.py")


def test_list_rules_names_every_code(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("REP000", "REP002", "REP101", "REP102", "REP103", "REP104", "REP105", "REP106"):
        assert code in out
    assert "[src-only]" in out
