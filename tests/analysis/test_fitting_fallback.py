"""The pure-Python normal-equations solver must agree with NumPy's lstsq.

``repro.analysis.fitting`` routes through ``numpy.linalg.lstsq`` when NumPy
is importable and through ``_solve_normal_equations`` otherwise; these tests
force the fallback path (by monkeypatching the module's ``np`` to ``None``)
and check it reproduces the NumPy answers to high precision.  The end-to-end
no-NumPy behaviour is covered by ``tests/integration/test_no_numpy_tier.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.analysis.fitting as fitting
from repro.analysis.fitting import (
    _solve_normal_equations,
    fit_power_law,
    fit_two_parameter_power_law,
)


@pytest.fixture
def no_numpy(monkeypatch):
    monkeypatch.setattr(fitting, "np", None)


def test_solver_matches_lstsq_on_a_known_system():
    design = [[1.0, 2.0, 1.0], [2.0, 1.0, 1.0], [3.0, 4.0, 1.0], [5.0, 1.0, 1.0]]
    response = [7.0, 6.0, 14.0, 10.0]
    ours = _solve_normal_equations(design, response)
    theirs, _, _, _ = np.linalg.lstsq(
        np.asarray(design), np.asarray(response), rcond=None
    )
    assert ours == pytest.approx(list(theirs), abs=1e-9)


def test_singular_design_raises():
    design = [[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]]  # collinear columns
    with pytest.raises(ValueError, match="singular"):
        _solve_normal_equations(design, [1.0, 2.0, 3.0])


def test_fit_power_law_agrees_with_numpy_path(no_numpy):
    xs = [10, 20, 40, 80, 160]
    ys = [3 * x**1.5 * (1 + 0.01 * (i % 3)) for i, x in enumerate(xs)]
    pure = fit_power_law(xs, ys)
    # Re-enable NumPy for the reference fit.
    fitting.np = np
    reference = fit_power_law(xs, ys)
    assert pure.exponent == pytest.approx(reference.exponent, abs=1e-9)
    assert pure.constant == pytest.approx(reference.constant, rel=1e-9)
    assert pure.r_squared == pytest.approx(reference.r_squared, abs=1e-12)


def test_fit_two_parameter_power_law_agrees_with_numpy_path(no_numpy):
    ns = [10, 20, 40, 10, 20, 40, 80, 80]
    ds = [2, 2, 2, 4, 4, 4, 2, 4]
    ys = [2.5 * n**0.9 * d**0.3 for n, d in zip(ns, ds)]
    pure = fit_two_parameter_power_law(ns, ds, ys)
    fitting.np = np
    reference = fit_two_parameter_power_law(ns, ds, ys)
    assert pure.exponents == pytest.approx(reference.exponents, abs=1e-9)
    assert pure.constant == pytest.approx(reference.constant, rel=1e-9)
    assert pure.exponents[0] == pytest.approx(0.9, abs=1e-9)
    assert pure.exponents[1] == pytest.approx(0.3, abs=1e-9)
