"""E1 -- Table 1, diameter rows: measured rounds of every diameter variant.

For each workload instance (families with increasing unweighted diameter at
roughly fixed ``n``), the benchmark measures the congestion-adjusted rounds
of:

* the classical exact weighted diameter (APSP + convergecast) -- the ``Θ̃(n)``
  row of Table 1;
* the classical SSSP-based 2-approximation;
* this paper's quantum ``(1 + o(1))``-approximation (Theorem 1.1);

and prints them next to the theoretical curves of the remaining Table 1 rows
(Le Gall-Magniez's unweighted quantum algorithm, the weighted lower bound).
The reproduced claim is the *shape*: the classical exact protocol tracks
``n`` regardless of ``D``, while the paper's algorithm tracks
``n^{9/10} D^{3/10}`` -- cheaper for small ``D``, degrading as ``D`` grows.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import (
    classical_weighted_bound,
    diameter_sweep_workloads,
    render_table,
    theorem12_lower_bound,
)
from repro.analysis.complexity import legall_magniez_bound
from repro.core import (
    classical_exact_diameter,
    quantum_weighted_diameter,
    sssp_two_approximation_diameter,
)

HEADERS = [
    "workload",
    "n",
    "D",
    "classical exact (measured)",
    "2-approx SSSP (measured)",
    "quantum (1+eps)^2 (measured)",
    "quantum ratio",
    "theory n",
    "theory n^0.9 D^0.3",
    "theory sqrt(nD) [unweighted, LG-M]",
    "theory n^2/3 [lower bnd]",
]


def _sweep():
    rows = []
    for instance in diameter_sweep_workloads(num_nodes=42, max_weight=20, seed=1):
        network = instance.network
        classical = classical_exact_diameter(network)
        two_approx = sssp_two_approximation_diameter(network)
        quantum = quantum_weighted_diameter(network, seed=3)
        rows.append(
            [
                instance.name,
                instance.num_nodes,
                int(instance.unweighted_diameter),
                classical.rounds,
                two_approx.rounds,
                quantum.total_rounds,
                f"{quantum.approximation_ratio:.3f}",
                round(classical_weighted_bound(instance.num_nodes, instance.unweighted_diameter)),
                round(instance.num_nodes ** 0.9 * instance.unweighted_diameter ** 0.3, 1),
                round(legall_magniez_bound(instance.num_nodes, instance.unweighted_diameter), 1),
                round(theorem12_lower_bound(instance.num_nodes, instance.unweighted_diameter), 1),
            ]
        )
    return rows


def test_table1_diameter_rows(benchmark, record_artifact):
    rows = run_once(benchmark, _sweep)
    table = render_table(
        HEADERS, rows, title="Table 1 (diameter rows): measured rounds vs theoretical curves"
    )
    record_artifact("table1_diameter", table)

    # Sanity of the regenerated table: every quantum run met its guarantee and
    # the classical protocol's cost never dropped below ~n while the
    # 2-approximation stayed well below it.
    for row in rows:
        n, quantum_ratio = row[1], float(row[6])
        assert quantum_ratio <= 2.25 + 1e-9
        assert row[3] >= n / 2          # classical exact ~ Θ̃(n) or worse
        assert row[4] <= row[3]         # one SSSP is cheaper than APSP
