"""Property-based tests for the quantum search substrate.

Every algebraic property is checked on *every registered backend* (via
:func:`force_backend`), so the pure-Python tier and the NumPy tier are held
to the same identities: the phase oracle is an involution, diffusion is
norm-preserving, and amplitude amplification follows the exact
``sin^2((2t+1) theta)`` law.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import (
    StateVector,
    amplitude_amplification_success_probability,
    available_backends,
    force_backend,
    grover_search,
    quantum_maximum,
    quantum_minimum,
)

BACKENDS = available_backends()


@pytest.mark.parametrize("backend", BACKENDS)
@given(st.integers(min_value=2, max_value=64), st.data())
@settings(max_examples=25, deadline=None)
def test_grover_success_probability_matches_formula(backend, domain_size, data):
    """The simulated success probability equals sin^2((2t+1) theta) exactly."""
    num_marked = data.draw(st.integers(min_value=1, max_value=domain_size))
    marked = set(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=domain_size - 1),
                min_size=num_marked,
                max_size=num_marked,
                unique=True,
            )
        )
    )
    with force_backend(backend):
        result = grover_search(
            domain_size, lambda x: x in marked, num_marked=len(marked)
        )
    predicted = amplitude_amplification_success_probability(
        domain_size, len(marked), result.iterations
    )
    assert abs(result.success_probability - predicted) < 1e-9
    assert result.success_probability >= 0.49  # optimal iteration count is good


@pytest.mark.parametrize("backend", BACKENDS)
@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=10, deadline=None)
def test_uniform_superposition_probabilities(backend, num_qubits):
    with force_backend(backend):
        state = StateVector(num_qubits).apply_hadamard_all()
    uniform = 1 / 2**num_qubits
    assert all(abs(p - uniform) < 1e-10 for p in state.probabilities())
    assert abs(state.norm() - 1) < 1e-10


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    st.integers(min_value=2, max_value=5),
    st.lists(st.booleans(), min_size=1, max_size=32),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_phase_oracle_is_an_involution(backend, num_qubits, flags, seed):
    """Applying the same phase mask twice restores the state exactly."""
    dim = 2**num_qubits
    mask = (flags * ((dim // len(flags)) + 1))[:dim]
    with force_backend(backend):
        state = StateVector(num_qubits, rng=seed).apply_hadamard_all()
        before = state.amplitudes
        state.apply_phase_mask(mask)
        state.apply_phase_mask(mask)
        after = state.amplitudes
    assert all(abs(a - b) < 1e-12 for a, b in zip(before, after))


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    st.integers(min_value=1, max_value=5),
    st.data(),
)
@settings(max_examples=25, deadline=None)
def test_diffusion_preserves_norm(backend, num_qubits, data):
    """Diffusion is a reflection, hence unitary: the norm never drifts."""
    dim = 2**num_qubits
    raw = data.draw(
        st.lists(
            st.floats(min_value=-1, max_value=1, allow_nan=False),
            min_size=dim,
            max_size=dim,
        )
    )
    if all(abs(value) < 1e-6 for value in raw):
        raw[0] = 1.0
    domain_size = data.draw(st.integers(min_value=1, max_value=dim))
    with force_backend(backend):
        state = StateVector(num_qubits).set_amplitudes(raw)
        state.apply_diffusion(domain_size)
        norm = state.norm()
    assert abs(norm - 1.0) < 1e-9


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=60),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_quantum_extrema_bracket_true_extrema(backend, values, seed):
    """The reported extremum is always an actual element and never better than
    the true optimum (it can only be equal or -- with small probability --
    strictly inside the range)."""
    with force_backend(backend):
        maximum = quantum_maximum(values, rng=seed)
        minimum = quantum_minimum(values, rng=seed)
    assert maximum.value in values
    assert minimum.value in values
    assert maximum.value <= max(values)
    assert minimum.value >= min(values)
    assert minimum.value <= maximum.value
    assert maximum.oracle_queries >= 1
    assert minimum.oracle_queries >= 1


@given(st.integers(min_value=1, max_value=256), st.integers(min_value=0, max_value=8))
@settings(max_examples=50, deadline=None)
def test_success_probability_formula_bounds(num_marked, iterations):
    domain = 256
    probability = amplitude_amplification_success_probability(
        domain, min(num_marked, domain), iterations
    )
    assert 0.0 <= probability <= 1.0
    # Zero iterations gives exactly the uniform-measurement baseline.
    baseline = amplitude_amplification_success_probability(domain, num_marked, 0)
    assert abs(baseline - num_marked / domain) < 1e-9


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    st.integers(min_value=2, max_value=48),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_sin_squared_law_single_marked(backend, domain_size, seed):
    """For one marked element the state follows the sin^2 law at every step."""
    theta = math.asin(math.sqrt(1 / domain_size))
    marked = seed % domain_size
    with force_backend(backend):
        result = grover_search(domain_size, lambda x: x == marked, num_marked=1)
    expected = math.sin((2 * result.iterations + 1) * theta) ** 2
    assert abs(result.success_probability - expected) < 1e-9
