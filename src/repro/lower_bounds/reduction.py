"""Theorems 4.2 and 4.8: assembling the ``Ω̃(n^{2/3})`` lower bound.

A lower bound cannot be "measured", but each ingredient of its proof is a
checkable statement, and the final bound is a deterministic function of those
ingredients.  This module provides:

* :func:`verify_diameter_gap` / :func:`verify_radius_gap` -- exhaustive or
  sampled verification of Lemmas 4.4 and 4.9: for inputs with
  ``F(x, y) = 1`` the (contracted) diameter/radius stays below
  ``max{2α, β}``, and for ``F(x, y) = 0`` it is at least
  ``min{α + β, 3α}``; with ``α = n²`` and ``β = 2α`` this is a
  ``3/2 - o(1)`` multiplicative gap.
* :func:`diameter_round_lower_bound` / :func:`radius_round_lower_bound` --
  the Theorem 4.2 / 4.8 arithmetic: any algorithm with fewer than
  ``Q^{sv}_{1/12}(F) / (c · h · B)`` rounds would, via Lemma 4.1, yield a
  Server-model protocol cheaper than the Lemma 4.7 / 4.10 bound, a
  contradiction; the resulting round bound is ``Ω(n^{2/3} / log² n)``.
* :class:`LowerBoundCertificate` -- the bound together with every ingredient
  that produced it, so EXPERIMENTS.md can show the full chain.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.graphs.contraction import contract_unit_weight_edges
from repro.graphs.properties import diameter as exact_diameter
from repro.graphs.properties import radius as exact_radius
from repro.lower_bounds.gadgets import (
    GadgetParameters,
    build_diameter_gadget,
    build_radius_gadget,
)
from repro.lower_bounds.server_model import server_model_complexity_lower_bound

__all__ = [
    "GapVerificationRecord",
    "verify_diameter_gap",
    "verify_radius_gap",
    "LowerBoundCertificate",
    "diameter_round_lower_bound",
    "radius_round_lower_bound",
    "enumerate_inputs",
    "sample_inputs",
]


@dataclass
class GapVerificationRecord:
    """One (x, y) instance of the Lemma 4.4 / 4.9 verification.

    Attributes
    ----------
    x / y:
        The inputs.
    function_value:
        ``F(x, y)`` (diameter) or ``F'(x, y)`` (radius).
    measured:
        The diameter/radius of the contracted gadget graph ``G'``.
    yes_threshold:
        ``max{2α, β}`` -- the value the measured quantity must not exceed
        when the function value is 1.
    no_threshold:
        ``min{α + β, 3α}`` -- the value the measured quantity must reach
        when the function value is 0.
    holds:
        Whether the appropriate inequality holds for this instance.
    """

    x: Tuple[int, ...]
    y: Tuple[int, ...]
    function_value: int
    measured: float
    yes_threshold: float
    no_threshold: float
    holds: bool


def enumerate_inputs(length: int) -> List[Tuple[int, ...]]:
    """All bit strings of the given length (use only for tiny gadgets)."""
    return [tuple(bits) for bits in itertools.product((0, 1), repeat=length)]


def sample_inputs(length: int, count: int, seed: int = 0) -> List[Tuple[int, ...]]:
    """``count`` uniformly random bit strings of the given length."""
    rng = random.Random(seed)
    return [
        tuple(rng.randint(0, 1) for _ in range(length)) for _ in range(count)
    ]


def _verify_gap(
    parameters: GadgetParameters,
    input_pairs: Sequence[Tuple[Tuple[int, ...], Tuple[int, ...]]],
    radius_variant: bool,
) -> List[GapVerificationRecord]:
    records: List[GapVerificationRecord] = []
    yes_threshold = max(2 * parameters.alpha, parameters.beta)
    no_threshold = min(parameters.alpha + parameters.beta, 3 * parameters.alpha)
    for x, y in input_pairs:
        if radius_variant:
            gadget = build_radius_gadget(x, y, parameters)
        else:
            gadget = build_diameter_gadget(x, y, parameters)
        contracted = contract_unit_weight_edges(gadget.graph).graph
        if radius_variant:
            measured = exact_radius(contracted)
        else:
            measured = exact_diameter(contracted)
        value = gadget.function_value()
        if value == 1:
            holds = measured <= yes_threshold
        else:
            holds = measured >= no_threshold
        records.append(
            GapVerificationRecord(
                x=tuple(x),
                y=tuple(y),
                function_value=value,
                measured=measured,
                yes_threshold=yes_threshold,
                no_threshold=no_threshold,
                holds=holds,
            )
        )
    return records


def verify_diameter_gap(
    parameters: GadgetParameters,
    input_pairs: Optional[
        Sequence[Tuple[Tuple[int, ...], Tuple[int, ...]]]
    ] = None,
    exhaustive: bool = False,
    num_samples: int = 20,
    seed: int = 0,
) -> List[GapVerificationRecord]:
    """Verify Lemma 4.4 on the given (or generated) input pairs.

    With ``exhaustive=True`` every pair of inputs is checked (only feasible
    for tiny gadgets); otherwise ``num_samples`` random pairs are used,
    always including the all-ones pair (``F = 1``) and the all-zeros pair
    (``F = 0``).
    """
    if input_pairs is None:
        length = parameters.input_length
        if exhaustive:
            all_inputs = enumerate_inputs(length)
            input_pairs = [(x, y) for x in all_inputs for y in all_inputs]
        else:
            xs = sample_inputs(length, num_samples, seed=seed)
            ys = sample_inputs(length, num_samples, seed=seed + 1)
            input_pairs = list(zip(xs, ys))
            input_pairs.append(((1,) * length, (1,) * length))
            input_pairs.append(((0,) * length, (0,) * length))
    return _verify_gap(parameters, input_pairs, radius_variant=False)


def verify_radius_gap(
    parameters: GadgetParameters,
    input_pairs: Optional[
        Sequence[Tuple[Tuple[int, ...], Tuple[int, ...]]]
    ] = None,
    exhaustive: bool = False,
    num_samples: int = 20,
    seed: int = 0,
) -> List[GapVerificationRecord]:
    """Verify Lemma 4.9 on the given (or generated) input pairs."""
    if input_pairs is None:
        length = parameters.input_length
        if exhaustive:
            all_inputs = enumerate_inputs(length)
            input_pairs = [(x, y) for x in all_inputs for y in all_inputs]
        else:
            xs = sample_inputs(length, num_samples, seed=seed)
            ys = sample_inputs(length, num_samples, seed=seed + 1)
            input_pairs = list(zip(xs, ys))
            input_pairs.append(((1,) * length, (1,) * length))
            input_pairs.append(((0,) * length, (0,) * length))
    return _verify_gap(parameters, input_pairs, radius_variant=True)


@dataclass
class LowerBoundCertificate:
    """The Theorem 4.2 / 4.8 bound with every ingredient on display.

    Attributes
    ----------
    problem:
        ``"diameter"`` or ``"radius"``.
    height:
        The gadget height ``h`` (Eq. (2) then fixes ``s`` and ``ℓ``).
    num_nodes:
        The gadget's node count ``n = Θ(2^{3h/2})``.
    unweighted_diameter_bound:
        The ``Θ(log n)`` unweighted diameter of the gadget (``O(h)``).
    input_length:
        ``2^s · ℓ``, the number of coordinate pairs of ``F`` / ``F'``.
    communication_lower_bound:
        ``Ω(sqrt(2^s · ℓ))``, the Server-model bound of Lemma 4.7 / 4.10.
    simulation_cost_per_round:
        ``h · B``, the counted bits per CONGEST round in the Lemma 4.1
        simulation.
    round_lower_bound:
        ``communication_lower_bound / simulation_cost_per_round`` -- the
        resulting round bound, ``Ω(n^{2/3} / log² n)``.
    theoretical_formula:
        ``n^{2/3} / log² n`` for direct comparison.
    """

    problem: str
    height: int
    num_nodes: int
    unweighted_diameter_bound: float
    input_length: int
    communication_lower_bound: float
    simulation_cost_per_round: float
    round_lower_bound: float
    theoretical_formula: float


def _round_lower_bound(problem: str, height: int, bandwidth_bits: Optional[int]) -> LowerBoundCertificate:
    parameters = GadgetParameters.from_height(height)
    num_nodes = parameters.expected_num_nodes(with_radius_hub=(problem == "radius"))
    if bandwidth_bits is None:
        bandwidth_bits = max(8, math.ceil(math.log2(num_nodes)))
    communication = server_model_complexity_lower_bound(
        parameters.num_blocks, parameters.ell
    )
    per_round = height * bandwidth_bits
    rounds = communication / per_round
    log_n = math.log2(num_nodes)
    theoretical = num_nodes ** (2 / 3) / (log_n**2)
    return LowerBoundCertificate(
        problem=problem,
        height=height,
        num_nodes=num_nodes,
        unweighted_diameter_bound=2.0 * height + 4,
        input_length=parameters.input_length,
        communication_lower_bound=communication,
        simulation_cost_per_round=per_round,
        round_lower_bound=rounds,
        theoretical_formula=theoretical,
    )


def diameter_round_lower_bound(
    height: int, bandwidth_bits: Optional[int] = None
) -> LowerBoundCertificate:
    """Theorem 4.2: the round lower bound for ``(3/2 - ε)``-approximate diameter."""
    return _round_lower_bound("diameter", height, bandwidth_bits)


def radius_round_lower_bound(
    height: int, bandwidth_bits: Optional[int] = None
) -> LowerBoundCertificate:
    """Theorem 4.8: the round lower bound for ``(3/2 - ε)``-approximate radius."""
    return _round_lower_bound("radius", height, bandwidth_bits)
