"""Shared helpers for the replint test suite.

The rule tests lint *snippets*, not files on disk: ``run_lint`` feeds
dedented source straight to :func:`repro.lint.lint_source` under a chosen
pretend path (src-scoped rules key on a ``src`` path component and on the
dotted module name derived from it, so the path is part of the fixture).
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

import pytest

from repro.lint import Finding, lint_source
from repro.lint.registry import resolve_rules


@pytest.fixture
def run_lint():
    """Lint a snippet as if it lived at ``rel`` (default: a src module)."""

    def _run(
        source: str,
        rel: str = "src/repro/sample.py",
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> List[Finding]:
        rules = None
        if select is not None or ignore is not None:
            rules = resolve_rules(select=select, ignore=ignore)
        return lint_source(textwrap.dedent(source), Path(rel), rules)

    return _run


@pytest.fixture
def codes(run_lint):
    """Like ``run_lint`` but reduced to the list of finding codes."""

    def _codes(source: str, **kwargs) -> List[str]:
        return [finding.code for finding in run_lint(source, **kwargs)]

    return _codes
